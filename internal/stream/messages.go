package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"adasense/internal/sensor"
)

// Payload codecs for the ADSP frame types. Encoding is append-style
// (zero-alloc into a caller buffer with capacity); decoding for the
// hot-path messages (batch, events) is into reusable structs so the
// steady-state push path allocates nothing. The layouts are normative
// in docs/streaming.md.
//
// Sensor configurations travel in binary — frequency as float64 bits
// plus the averaging window as uint32 — not as their "F100_A128"
// string names, so the hot path never formats or parses strings.

// Message size bounds, validated before any slice is sized so a
// hostile payload cannot drive allocation past them.
const (
	// maxStringBytes bounds every length-prefixed string (device ids,
	// tokens, replica ids and URLs, error messages).
	maxStringBytes = 1024
	// maxBatchSamples bounds one pushed batch's per-axis sample count
	// (65536 samples ≈ 131 s at the densest 500 Hz config).
	maxBatchSamples = 1 << 16
	// maxEvents bounds one acknowledgement's classification event count.
	maxEvents = 1 << 12
)

// configWireLen is the encoded size of one sensor.Config: float64
// frequency bits plus uint32 averaging window.
const configWireLen = 12

var errPayload = errors.New("stream: malformed payload")

// payloadReader is a latching bounds-checked cursor over one frame
// payload, in the style of the ADSS state decoder: the first
// out-of-bounds read marks the reader bad and every later read returns
// zero values, so codecs validate once at the end instead of after
// every field.
type payloadReader struct {
	buf []byte
	bad bool
}

func (d *payloadReader) take(n int) []byte {
	if d.bad || n < 0 || len(d.buf) < n {
		d.bad = true
		return nil
	}
	b := d.buf[:n]
	d.buf = d.buf[n:]
	return b
}

func (d *payloadReader) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *payloadReader) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *payloadReader) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *payloadReader) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *payloadReader) f64() float64 { return math.Float64frombits(d.u64()) }

// boolByte reads one strict boolean byte. Anything but 0 or 1 is a
// protocol error, which keeps encode∘decode the identity on every
// accepted frame (the property the fuzz target checks).
func (d *payloadReader) boolByte() bool {
	b := d.u8()
	if b > 1 {
		d.bad = true
	}
	return b == 1
}

// str reads one u32-length-prefixed string, refusing lengths beyond
// maxStringBytes before anything is copied.
func (d *payloadReader) str() string {
	n := d.u32()
	if n > maxStringBytes {
		d.bad = true
		return ""
	}
	b := d.take(int(n))
	if b == nil {
		return ""
	}
	return string(b)
}

// config reads one wire-encoded sensor configuration and validates it.
func (d *payloadReader) config() sensor.Config {
	cfg := sensor.Config{FreqHz: d.f64(), AvgWindow: int(int32(d.u32()))}
	if d.bad {
		return sensor.Config{}
	}
	// Validate catches non-positive and too-fast rates; the explicit NaN
	// check closes the one hole IEEE comparisons leave open.
	if math.IsNaN(cfg.FreqHz) || cfg.Validate() != nil {
		d.bad = true
		return sensor.Config{}
	}
	return cfg
}

// f64sInto reads n float64s into dst, reusing its capacity.
func (d *payloadReader) f64sInto(dst []float64, n int) []float64 {
	b := d.take(8 * n)
	if b == nil {
		return dst[:0]
	}
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return dst
}

// done latches the terminal validation: a decode is well-formed only
// if every read stayed in bounds and no payload bytes remain.
func (d *payloadReader) done(what string) error {
	if d.bad {
		return fmt.Errorf("%w: %s", errPayload, what)
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("%w: %s carries %d trailing bytes", errPayload, what, len(d.buf))
	}
	return nil
}

func appendString(dst []byte, s string) []byte {
	if len(s) > maxStringBytes {
		s = s[:maxStringBytes]
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

// AppendConfig appends one wire-encoded sensor configuration.
func AppendConfig(dst []byte, cfg sensor.Config) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(cfg.FreqHz))
	return binary.LittleEndian.AppendUint32(dst, uint32(cfg.AvgWindow))
}

// DecodeConfig decodes a config frame payload (FrameConfig).
func DecodeConfig(p []byte) (sensor.Config, error) {
	d := payloadReader{buf: p}
	cfg := d.config()
	return cfg, d.done("config")
}

// Hello is the client's opening frame: its device id and bearer token.
type Hello struct {
	Device string
	Token  string
}

// AppendHello appends a hello payload.
func AppendHello(dst []byte, h Hello) []byte {
	dst = appendString(dst, h.Device)
	return appendString(dst, h.Token)
}

// DecodeHello decodes a hello payload.
func DecodeHello(p []byte) (Hello, error) {
	d := payloadReader{buf: p}
	h := Hello{Device: d.str(), Token: d.str()}
	return h, d.done("hello")
}

// Welcome accepts a hello: the config the device must sample at, the
// serving model generation, and whether an existing session resumed.
type Welcome struct {
	Config   sensor.Config
	ModelGen uint64
	Resumed  bool
}

// AppendWelcome appends a welcome payload.
func AppendWelcome(dst []byte, w Welcome) []byte {
	dst = AppendConfig(dst, w.Config)
	dst = binary.LittleEndian.AppendUint64(dst, w.ModelGen)
	resumed := byte(0)
	if w.Resumed {
		resumed = 1
	}
	return append(dst, resumed)
}

// DecodeWelcome decodes a welcome payload.
func DecodeWelcome(p []byte) (Welcome, error) {
	d := payloadReader{buf: p}
	w := Welcome{Config: d.config(), ModelGen: d.u64(), Resumed: d.boolByte()}
	return w, d.done("welcome")
}

// BatchMsg is one pushed batch of raw 3-axis samples. Seq is the
// client's monotonically increasing push ordinal; the acknowledging
// events or error frame echoes it.
type BatchMsg struct {
	Seq     uint64
	Config  sensor.Config
	StartAt float64
	X, Y, Z []float64
}

// AppendBatch appends a batch payload. The three axes must have equal
// length ≤ maxBatchSamples; longer batches must be split by the sender
// (the decoder refuses them).
func AppendBatch(dst []byte, m *BatchMsg) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, m.Seq)
	dst = AppendConfig(dst, m.Config)
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(m.StartAt))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(m.X)))
	for _, axis := range [3][]float64{m.X, m.Y, m.Z} {
		for _, v := range axis {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
	}
	return dst
}

// Decode decodes a batch payload into m, reusing the X/Y/Z capacity —
// steady-state batch decode allocates nothing. The sample count is
// bound-checked before the axis slices are sized.
func (m *BatchMsg) Decode(p []byte) error {
	d := payloadReader{buf: p}
	m.Seq = d.u64()
	m.Config = d.config()
	m.StartAt = d.f64()
	n := d.u32()
	if n == 0 || n > maxBatchSamples {
		return fmt.Errorf("%w: batch sample count %d (want 1..%d)", errPayload, n, maxBatchSamples)
	}
	m.X = d.f64sInto(m.X, int(n))
	m.Y = d.f64sInto(m.Y, int(n))
	m.Z = d.f64sInto(m.Z, int(n))
	return d.done("batch")
}

// Event is one classification tick inside an events acknowledgement:
// the activity index (internal/synth's class table), its confidence,
// the config the tick was classified under and whether the adaptation
// controller switched configs at this tick.
type Event struct {
	Activity      uint8
	Confidence    float64
	Config        sensor.Config
	ConfigChanged bool
}

// EventsMsg acknowledges the batch with ordinal Seq: its completed
// classification events plus the config the device must sample at from
// now on (Config is the server-push half of the adaptation loop).
type EventsMsg struct {
	Seq    uint64
	Config sensor.Config
	Events []Event
}

// AppendEvents appends an events payload. At most maxEvents events are
// representable; a session never completes more per batch.
func AppendEvents(dst []byte, m *EventsMsg) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, m.Seq)
	dst = AppendConfig(dst, m.Config)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(m.Events)))
	for i := range m.Events {
		ev := &m.Events[i]
		changed := byte(0)
		if ev.ConfigChanged {
			changed = 1
		}
		dst = append(dst, ev.Activity, changed)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(ev.Confidence))
		dst = AppendConfig(dst, ev.Config)
	}
	return dst
}

// Decode decodes an events payload into m, reusing the Events
// capacity.
func (m *EventsMsg) Decode(p []byte) error {
	d := payloadReader{buf: p}
	m.Seq = d.u64()
	m.Config = d.config()
	n := int(d.u16())
	if n > maxEvents {
		return fmt.Errorf("%w: event count %d > %d", errPayload, n, maxEvents)
	}
	if cap(m.Events) < n {
		m.Events = make([]Event, n)
	}
	m.Events = m.Events[:n]
	for i := range m.Events {
		ev := &m.Events[i]
		ev.Activity = d.u8()
		ev.ConfigChanged = d.boolByte()
		ev.Confidence = d.f64()
		ev.Config = d.config()
	}
	return d.done("events")
}

// Redirect names the replica that owns the device, so a misrouted
// connection can re-dial its owner directly.
type Redirect struct {
	ReplicaID  string
	ReplicaURL string
}

// AppendRedirect appends a redirect payload.
func AppendRedirect(dst []byte, r Redirect) []byte {
	dst = appendString(dst, r.ReplicaID)
	return appendString(dst, r.ReplicaURL)
}

// DecodeRedirect decodes a redirect payload.
func DecodeRedirect(p []byte) (Redirect, error) {
	d := payloadReader{buf: p}
	r := Redirect{ReplicaID: d.str(), ReplicaURL: d.str()}
	return r, d.done("redirect")
}

// ErrorMsg reports a per-batch failure that leaves the connection
// open. Seq echoes the refused batch; Config is the configuration the
// device must currently sample at, so a config-mismatch refusal is
// self-healing.
type ErrorMsg struct {
	Seq    uint64
	Code   CloseCode
	Config sensor.Config
	Msg    string
}

// AppendError appends an error payload.
func AppendError(dst []byte, e ErrorMsg) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, e.Seq)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(e.Code))
	dst = AppendConfig(dst, e.Config)
	return appendString(dst, e.Msg)
}

// DecodeError decodes an error payload.
func DecodeError(p []byte) (ErrorMsg, error) {
	d := payloadReader{buf: p}
	e := ErrorMsg{Seq: d.u64(), Code: CloseCode(d.u16()), Config: d.config(), Msg: d.str()}
	return e, d.done("error")
}

// Goodbye closes the connection gracefully with a close code.
type Goodbye struct {
	Code CloseCode
	Msg  string
}

// AppendGoodbye appends a goodbye payload.
func AppendGoodbye(dst []byte, g Goodbye) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(g.Code))
	return appendString(dst, g.Msg)
}

// DecodeGoodbye decodes a goodbye payload.
func DecodeGoodbye(p []byte) (Goodbye, error) {
	d := payloadReader{buf: p}
	g := Goodbye{Code: CloseCode(d.u16()), Msg: d.str()}
	return g, d.done("goodbye")
}
