package stream

import (
	"encoding/binary"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"adasense/internal/sensor"
)

var testCfg = sensor.Config{FreqHz: 100, AvgWindow: 128}

func TestConfigRoundTrip(t *testing.T) {
	p := AppendConfig(nil, testCfg)
	if len(p) != configWireLen {
		t.Fatalf("encoded config is %d bytes, want %d", len(p), configWireLen)
	}
	got, err := DecodeConfig(p)
	if err != nil {
		t.Fatalf("DecodeConfig: %v", err)
	}
	if got != testCfg {
		t.Fatalf("round trip = %+v, want %+v", got, testCfg)
	}
}

func TestConfigRejections(t *testing.T) {
	encode := func(freq float64, win uint32) []byte {
		p := binary.LittleEndian.AppendUint64(nil, math.Float64bits(freq))
		return binary.LittleEndian.AppendUint32(p, win)
	}
	cases := []struct {
		name string
		p    []byte
	}{
		{"short", AppendConfig(nil, testCfg)[:configWireLen-1]},
		{"trailing", append(AppendConfig(nil, testCfg), 0)},
		{"zero freq", encode(0, 128)},
		{"negative freq", encode(-5, 128)},
		{"NaN freq", encode(math.NaN(), 128)},
		{"too fast", encode(1e9, 128)},
		{"zero window", encode(100, 0)},
		{"negative window", encode(100, 0x80000000)},
	}
	for _, tc := range cases {
		if _, err := DecodeConfig(tc.p); !errors.Is(err, errPayload) {
			t.Errorf("%s: err = %v, want errPayload", tc.name, err)
		}
	}
}

func TestHelloRoundTrip(t *testing.T) {
	h := Hello{Device: "dev-042", Token: "secret-token"}
	got, err := DecodeHello(AppendHello(nil, h))
	if err != nil || got != h {
		t.Fatalf("round trip = %+v, %v; want %+v", got, err, h)
	}
	// Empty strings are legal on the wire.
	got, err = DecodeHello(AppendHello(nil, Hello{}))
	if err != nil || got != (Hello{}) {
		t.Fatalf("empty round trip = %+v, %v", got, err)
	}
}

func TestStringBounds(t *testing.T) {
	// The encoder truncates oversized strings rather than emitting an
	// invalid frame...
	long := strings.Repeat("d", maxStringBytes+100)
	got, err := DecodeHello(AppendHello(nil, Hello{Device: long, Token: "t"}))
	if err != nil {
		t.Fatalf("DecodeHello: %v", err)
	}
	if len(got.Device) != maxStringBytes {
		t.Fatalf("device truncated to %d, want %d", len(got.Device), maxStringBytes)
	}
	// ...and the decoder refuses a hostile length prefix outright,
	// before anything is copied.
	p := binary.LittleEndian.AppendUint32(nil, maxStringBytes+1)
	p = append(p, make([]byte, maxStringBytes+1)...)
	p = appendString(p, "token")
	if _, err := DecodeHello(p); !errors.Is(err, errPayload) {
		t.Fatalf("oversized string length: err = %v, want errPayload", err)
	}
}

func TestWelcomeRoundTrip(t *testing.T) {
	for _, w := range []Welcome{
		{Config: testCfg, ModelGen: 7, Resumed: true},
		{Config: sensor.Config{FreqHz: 25, AvgWindow: 16}, ModelGen: 0, Resumed: false},
	} {
		got, err := DecodeWelcome(AppendWelcome(nil, w))
		if err != nil || got != w {
			t.Fatalf("round trip = %+v, %v; want %+v", got, err, w)
		}
	}
}

func TestBatchRoundTripAndReuse(t *testing.T) {
	m := BatchMsg{
		Seq:     42,
		Config:  testCfg,
		StartAt: 12.5,
		X:       []float64{1, 2, 3},
		Y:       []float64{4, 5, 6},
		Z:       []float64{7, 8, 9},
	}
	p := AppendBatch(nil, &m)

	var dec BatchMsg
	if err := dec.Decode(p); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if dec.Seq != m.Seq || dec.Config != m.Config || dec.StartAt != m.StartAt ||
		!reflect.DeepEqual(dec.X, m.X) || !reflect.DeepEqual(dec.Y, m.Y) || !reflect.DeepEqual(dec.Z, m.Z) {
		t.Fatalf("round trip = %+v, want %+v", dec, m)
	}

	// A second decode into the same struct must reuse the axis slices.
	x0 := &dec.X[0]
	if err := dec.Decode(p); err != nil {
		t.Fatalf("second Decode: %v", err)
	}
	if &dec.X[0] != x0 {
		t.Fatal("second decode reallocated the X axis")
	}
}

func TestBatchRejections(t *testing.T) {
	m := BatchMsg{Seq: 1, Config: testCfg, StartAt: 0, X: []float64{1}, Y: []float64{2}, Z: []float64{3}}
	good := AppendBatch(nil, &m)
	countOff := 8 + configWireLen + 8

	var dec BatchMsg
	for _, tc := range []struct {
		name  string
		count uint32
	}{{"zero samples", 0}, {"oversized count", maxBatchSamples + 1}, {"hostile count", 0xFFFFFFFF}} {
		p := append([]byte(nil), good...)
		binary.LittleEndian.PutUint32(p[countOff:], tc.count)
		if err := dec.Decode(p); !errors.Is(err, errPayload) {
			t.Errorf("%s: err = %v, want errPayload", tc.name, err)
		}
	}
	if err := dec.Decode(good[:len(good)-4]); !errors.Is(err, errPayload) {
		t.Errorf("truncated samples: err = %v, want errPayload", err)
	}
	if err := dec.Decode(append(append([]byte(nil), good...), 0)); !errors.Is(err, errPayload) {
		t.Errorf("trailing bytes: err = %v, want errPayload", err)
	}
}

func TestEventsRoundTripAndReuse(t *testing.T) {
	m := EventsMsg{
		Seq:    9,
		Config: testCfg,
		Events: []Event{
			{Activity: 3, Confidence: 0.91, Config: testCfg, ConfigChanged: false},
			{Activity: 1, Confidence: 0.44, Config: sensor.Config{FreqHz: 50, AvgWindow: 64}, ConfigChanged: true},
		},
	}
	p := AppendEvents(nil, &m)

	var dec EventsMsg
	if err := dec.Decode(p); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if dec.Seq != m.Seq || dec.Config != m.Config || !reflect.DeepEqual(dec.Events, m.Events) {
		t.Fatalf("round trip = %+v, want %+v", dec, m)
	}

	// Empty acks are legal (a batch can complete zero windows) and must
	// keep the events slice capacity for the next decode.
	empty := EventsMsg{Seq: 10, Config: testCfg}
	if err := dec.Decode(AppendEvents(nil, &empty)); err != nil {
		t.Fatalf("empty Decode: %v", err)
	}
	if len(dec.Events) != 0 || cap(dec.Events) < 2 {
		t.Fatalf("empty decode: len %d cap %d, want 0 and >=2", len(dec.Events), cap(dec.Events))
	}

	// Hostile event count is refused before sizing.
	hostile := append([]byte(nil), p...)
	binary.LittleEndian.PutUint16(hostile[8+configWireLen:], maxEvents+1)
	if err := dec.Decode(hostile); !errors.Is(err, errPayload) {
		t.Fatalf("oversized event count: err = %v, want errPayload", err)
	}
}

func TestRedirectErrorGoodbyeRoundTrips(t *testing.T) {
	r := Redirect{ReplicaID: "replica-b", ReplicaURL: "http://10.0.0.2:8080"}
	if got, err := DecodeRedirect(AppendRedirect(nil, r)); err != nil || got != r {
		t.Fatalf("redirect round trip = %+v, %v", got, err)
	}
	e := ErrorMsg{Seq: 17, Code: CodeBadBatch, Config: testCfg, Msg: "config mismatch"}
	if got, err := DecodeError(AppendError(nil, e)); err != nil || got != e {
		t.Fatalf("error round trip = %+v, %v", got, err)
	}
	g := Goodbye{Code: CodeDraining, Msg: "gateway draining"}
	if got, err := DecodeGoodbye(AppendGoodbye(nil, g)); err != nil || got != g {
		t.Fatalf("goodbye round trip = %+v, %v", got, err)
	}
}
