package stream

// Minimal RFC 6455 WebSocket transport for ADSP. The module is
// dependency-free, so the handshake and framing are hand-rolled over
// the stdlib — deliberately only the corner of the RFC the streaming
// ingress needs:
//
//   - server-side upgrade via http.Hijacker, client-side dial over
//     plain TCP (ws:// and http:// schemes; TLS stays the job of the
//     fleet's ingress proxy, as for the HTTP surface);
//   - binary frames only, treated as a raw byte stream: ADSP frames
//     are self-delimiting, so WebSocket message boundaries carry no
//     meaning and a WSConn is just an io.ReadWriteCloser — the ADSP
//     session loop is byte-stream transport-agnostic between raw TCP
//     and WebSocket;
//   - control frames handled inline: ping answered with pong, close
//     surfaced as io.EOF, pong skipped.

import (
	"bufio"
	"context"
	"crypto/rand"
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"
)

// wsGUID is the protocol-fixed key-hashing suffix from RFC 6455 §1.3.
const wsGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// WebSocket opcodes (RFC 6455 §5.2).
const (
	wsOpContinuation = 0x0
	wsOpText         = 0x1
	wsOpBinary       = 0x2
	wsOpClose        = 0x8
	wsOpPing         = 0x9
	wsOpPong         = 0xA
)

// wsMaxControlPayload bounds a control frame's payload (RFC 6455 §5.5).
const wsMaxControlPayload = 125

var errWSProtocol = errors.New("stream: websocket protocol error")

// WSConn adapts one WebSocket connection to an ordered byte stream:
// Read drains binary message payloads across frame boundaries, Write
// sends one binary frame per call. Reads and writes may run on two
// goroutines concurrently (one reader, one writer — the ADSP session
// pattern); neither side may be shared.
type WSConn struct {
	conn net.Conn
	br   *bufio.Reader
	// client marks the dialing side: its frames are masked (RFC 6455
	// §5.3) and its peer's must not be.
	client bool

	// Read state: what remains of the current data frame's payload.
	remaining int64
	masked    bool
	maskKey   [4]byte
	maskOff   int

	// wmu serializes writes: data writes with the inline pong replies
	// the read side sends.
	wmu  sync.Mutex
	wbuf []byte
}

// Read reads payload bytes of the next binary (or continuation) data
// frame, handling control frames inline. A close frame — or the peer
// vanishing — surfaces as io.EOF.
func (c *WSConn) Read(p []byte) (int, error) {
	for {
		if c.remaining > 0 {
			n := len(p)
			if int64(n) > c.remaining {
				n = int(c.remaining)
			}
			n, err := c.br.Read(p[:n])
			if n > 0 {
				if c.masked {
					for i := 0; i < n; i++ {
						p[i] ^= c.maskKey[(c.maskOff+i)&3]
					}
					c.maskOff = (c.maskOff + n) & 3
				}
				c.remaining -= int64(n)
			}
			if err == io.EOF && c.remaining > 0 {
				err = io.ErrUnexpectedEOF
			}
			return n, err
		}
		if err := c.nextFrame(); err != nil {
			return 0, err
		}
	}
}

// nextFrame reads one frame header, dispatches control frames, and
// arms the read state for a data frame.
func (c *WSConn) nextFrame() error {
	var h [2]byte
	if _, err := io.ReadFull(c.br, h[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return io.EOF
		}
		return err
	}
	opcode := h[0] & 0x0f
	masked := h[1]&0x80 != 0
	length := int64(h[1] & 0x7f)
	switch length {
	case 126:
		var ext [2]byte
		if _, err := io.ReadFull(c.br, ext[:]); err != nil {
			return err
		}
		length = int64(binary.BigEndian.Uint16(ext[:]))
	case 127:
		var ext [8]byte
		if _, err := io.ReadFull(c.br, ext[:]); err != nil {
			return err
		}
		l := binary.BigEndian.Uint64(ext[:])
		if l > 1<<62 {
			return fmt.Errorf("%w: absurd frame length", errWSProtocol)
		}
		length = int64(l)
	}
	var key [4]byte
	if masked {
		if _, err := io.ReadFull(c.br, key[:]); err != nil {
			return err
		}
	}
	// A server must refuse unmasked client frames; a client must refuse
	// masked server frames (RFC 6455 §5.1).
	if c.client == masked {
		return fmt.Errorf("%w: wrong frame masking for direction", errWSProtocol)
	}

	if opcode >= wsOpClose {
		// Control frames are short and never fragmented; consume inline.
		if length > wsMaxControlPayload {
			return fmt.Errorf("%w: oversized control frame", errWSProtocol)
		}
		var payload [wsMaxControlPayload]byte
		if _, err := io.ReadFull(c.br, payload[:length]); err != nil {
			return err
		}
		if masked {
			for i := int64(0); i < length; i++ {
				payload[i] ^= key[i&3]
			}
		}
		switch opcode {
		case wsOpClose:
			// Best-effort close echo, then surface end of stream.
			c.writeFrame(wsOpClose, payload[:length])
			return io.EOF
		case wsOpPing:
			return c.writeFrame(wsOpPong, payload[:length])
		case wsOpPong:
			return nil
		}
		return fmt.Errorf("%w: unknown control opcode %#x", errWSProtocol, opcode)
	}

	switch opcode {
	case wsOpBinary, wsOpContinuation, wsOpText:
		c.remaining = length
		c.masked = masked
		c.maskKey = key
		c.maskOff = 0
		return nil
	}
	return fmt.Errorf("%w: unknown opcode %#x", errWSProtocol, opcode)
}

// Write sends p as one binary frame.
func (c *WSConn) Write(p []byte) (int, error) {
	if err := c.writeFrame(wsOpBinary, p); err != nil {
		return 0, err
	}
	return len(p), nil
}

// writeFrame writes one unfragmented frame, masking it on the client
// side. The masked copy reuses one scratch buffer, so steady-state
// writes do not allocate.
func (c *WSConn) writeFrame(opcode byte, p []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	var hdr [14]byte
	hdr[0] = 0x80 | opcode // FIN set: never fragmented
	n := 2
	switch {
	case len(p) < 126:
		hdr[1] = byte(len(p))
	case len(p) <= 0xffff:
		hdr[1] = 126
		binary.BigEndian.PutUint16(hdr[2:], uint16(len(p)))
		n = 4
	default:
		hdr[1] = 127
		binary.BigEndian.PutUint64(hdr[2:], uint64(len(p)))
		n = 10
	}
	body := p
	if c.client {
		hdr[1] |= 0x80
		var key [4]byte
		if _, err := rand.Read(key[:]); err != nil {
			return err
		}
		copy(hdr[n:], key[:])
		n += 4
		if cap(c.wbuf) < len(p) {
			c.wbuf = make([]byte, len(p))
		}
		c.wbuf = c.wbuf[:len(p)]
		for i := range p {
			c.wbuf[i] = p[i] ^ key[i&3]
		}
		body = c.wbuf
	}
	if _, err := c.conn.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := c.conn.Write(body)
	return err
}

// Close sends a best-effort close frame and closes the connection.
func (c *WSConn) Close() error {
	c.writeFrame(wsOpClose, nil)
	return c.conn.Close()
}

// SetReadDeadline bounds future Reads, like net.Conn.
func (c *WSConn) SetReadDeadline(t time.Time) error { return c.conn.SetReadDeadline(t) }

// SetWriteDeadline bounds future Writes, like net.Conn.
func (c *WSConn) SetWriteDeadline(t time.Time) error { return c.conn.SetWriteDeadline(t) }

// wsAccept computes the Sec-WebSocket-Accept value for a key.
func wsAccept(key string) string {
	h := sha1.Sum([]byte(key + wsGUID))
	return base64.StdEncoding.EncodeToString(h[:])
}

// headerHasToken reports whether a comma-separated header contains the
// token, case-insensitively (Connection: keep-alive, Upgrade).
func headerHasToken(h http.Header, name, token string) bool {
	for _, v := range h.Values(name) {
		for _, part := range strings.Split(v, ",") {
			if strings.EqualFold(strings.TrimSpace(part), token) {
				return true
			}
		}
	}
	return false
}

// UpgradeHTTP performs the server side of the WebSocket handshake on
// an HTTP request and hands back the hijacked connection as a WSConn.
// On failure it writes the appropriate HTTP error response itself and
// returns the error; the caller must not touch w afterwards either
// way.
func UpgradeHTTP(w http.ResponseWriter, r *http.Request) (*WSConn, error) {
	if r.Method != http.MethodGet {
		http.Error(w, "websocket handshake requires GET", http.StatusMethodNotAllowed)
		return nil, fmt.Errorf("%w: method %s", errWSProtocol, r.Method)
	}
	if !headerHasToken(r.Header, "Connection", "upgrade") ||
		!strings.EqualFold(r.Header.Get("Upgrade"), "websocket") {
		http.Error(w, "not a websocket handshake", http.StatusBadRequest)
		return nil, fmt.Errorf("%w: missing upgrade headers", errWSProtocol)
	}
	if v := r.Header.Get("Sec-WebSocket-Version"); v != "13" {
		w.Header().Set("Sec-WebSocket-Version", "13")
		http.Error(w, "unsupported websocket version", http.StatusUpgradeRequired)
		return nil, fmt.Errorf("%w: version %q", errWSProtocol, v)
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" {
		http.Error(w, "missing Sec-WebSocket-Key", http.StatusBadRequest)
		return nil, fmt.Errorf("%w: missing key", errWSProtocol)
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		http.Error(w, "connection cannot be hijacked", http.StatusInternalServerError)
		return nil, fmt.Errorf("%w: ResponseWriter is not a Hijacker", errWSProtocol)
	}
	conn, brw, err := hj.Hijack()
	if err != nil {
		http.Error(w, "hijack failed", http.StatusInternalServerError)
		return nil, err
	}
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + wsAccept(key) + "\r\n\r\n"
	if _, err := brw.WriteString(resp); err != nil {
		conn.Close()
		return nil, err
	}
	if err := brw.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	// Reuse the hijacked bufio.Reader: it may already hold bytes the
	// client pipelined behind the handshake.
	return &WSConn{conn: conn, br: brw.Reader}, nil
}

// DialWS dials a WebSocket endpoint ("ws://host:port/path"; "http" is
// accepted as an alias so gateway base URLs work unchanged) and
// performs the client handshake. TLS schemes are refused — like the
// fleet's HTTP surface, transport security is terminated in front of
// the gateway. The context bounds the dial and handshake.
func DialWS(ctx context.Context, rawURL string) (*WSConn, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, fmt.Errorf("stream: dial %q: %w", rawURL, err)
	}
	switch u.Scheme {
	case "ws", "http":
	case "wss", "https":
		return nil, fmt.Errorf("stream: dial %q: TLS is not terminated by the gateway", rawURL)
	default:
		return nil, fmt.Errorf("stream: dial %q: unsupported scheme %q", rawURL, u.Scheme)
	}
	host := u.Host
	if u.Port() == "" {
		host = net.JoinHostPort(u.Hostname(), "80")
	}
	path := u.RequestURI()
	if path == "" {
		path = "/"
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", host)
	if err != nil {
		return nil, err
	}
	if deadline, ok := ctx.Deadline(); ok {
		conn.SetDeadline(deadline)
		defer conn.SetDeadline(time.Time{})
	}
	var nonce [16]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		conn.Close()
		return nil, err
	}
	key := base64.StdEncoding.EncodeToString(nonce[:])
	req := "GET " + path + " HTTP/1.1\r\n" +
		"Host: " + u.Host + "\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Key: " + key + "\r\n" +
		"Sec-WebSocket-Version: 13\r\n\r\n"
	if _, err := io.WriteString(conn, req); err != nil {
		conn.Close()
		return nil, err
	}
	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("stream: websocket handshake: %w", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusSwitchingProtocols {
		conn.Close()
		return nil, fmt.Errorf("stream: websocket handshake refused: %s", resp.Status)
	}
	if got := resp.Header.Get("Sec-WebSocket-Accept"); got != wsAccept(key) {
		conn.Close()
		return nil, fmt.Errorf("%w: bad Sec-WebSocket-Accept", errWSProtocol)
	}
	return &WSConn{conn: conn, br: br, client: true}, nil
}
