package stream

import (
	"bytes"
	"context"
	"crypto/rand"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// wsPair starts an upgrade-handling test server, dials it, and returns
// both ends of one live WebSocket connection.
func wsPair(t *testing.T) (client, server *WSConn) {
	t.Helper()
	accepted := make(chan *WSConn, 1)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c, err := UpgradeHTTP(w, r)
		if err != nil {
			t.Errorf("UpgradeHTTP: %v", err)
			return
		}
		accepted <- c
	}))
	t.Cleanup(ts.Close)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	c, err := DialWS(ctx, ts.URL)
	if err != nil {
		t.Fatalf("DialWS: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	select {
	case s := <-accepted:
		t.Cleanup(func() { s.Close() })
		return c, s
	case <-time.After(5 * time.Second):
		t.Fatal("server never accepted the upgrade")
		return nil, nil
	}
}

func TestWSAcceptRFCVector(t *testing.T) {
	// The handshake sample from RFC 6455 §1.2.
	if got := wsAccept("dGhlIHNhbXBsZSBub25jZQ=="); got != "s3pPLMBiTxaQ9kYGzzhZRbK+xOo=" {
		t.Fatalf("wsAccept = %q", got)
	}
}

func TestWSByteStreamBothDirections(t *testing.T) {
	c, s := wsPair(t)

	// Client -> server, spanning the 7-bit, 16-bit and 64-bit length
	// encodings; the large payloads also cross message boundaries on the
	// reading side.
	sizes := []int{1, 125, 126, 65535, 65536, 200_000}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, n := range sizes {
			p := make([]byte, n)
			rand.Read(p)
			if _, err := c.Write(p); err != nil {
				t.Errorf("client write %d: %v", n, err)
				return
			}
			echo := make([]byte, n)
			if _, err := io.ReadFull(c, echo); err != nil {
				t.Errorf("client read %d: %v", n, err)
				return
			}
			if !bytes.Equal(echo, p) {
				t.Errorf("echo mismatch at %d bytes", n)
				return
			}
		}
		c.Close()
	}()

	// Server side: echo everything back.
	buf := make([]byte, 32*1024)
	for {
		n, err := s.Read(buf)
		if n > 0 {
			if _, werr := s.Write(buf[:n]); werr != nil {
				t.Fatalf("server write: %v", werr)
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("server read: %v", err)
		}
	}
	wg.Wait()
}

func TestWSAdspOverWebSocket(t *testing.T) {
	c, s := wsPair(t)

	// An ADSP exchange over the WebSocket byte stream, exercising the
	// Reader against frames that arrive split across ws messages.
	go func() {
		data := AppendFrame(nil, FrameHello, AppendHello(nil, Hello{Device: "d", Token: "t"}))
		// Write in tiny chunks to prove frame reads span ws messages.
		for i := 0; i < len(data); i += 5 {
			end := i + 5
			if end > len(data) {
				end = len(data)
			}
			if _, err := c.Write(data[i:end]); err != nil {
				t.Errorf("chunk write: %v", err)
				return
			}
		}
	}()
	rd := NewReader(s)
	f, err := rd.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	h, err := DecodeHello(f.Payload)
	if err != nil || h.Device != "d" || h.Token != "t" {
		t.Fatalf("hello = %+v, %v", h, err)
	}
}

func TestWSCloseSurfacesEOF(t *testing.T) {
	c, s := wsPair(t)
	if err := c.Close(); err != nil {
		t.Fatalf("client close: %v", err)
	}
	if _, err := s.Read(make([]byte, 16)); err != io.EOF {
		t.Fatalf("server read after close = %v, want io.EOF", err)
	}
}

func TestUpgradeHTTPRejections(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, err := UpgradeHTTP(w, r); err == nil {
			t.Error("UpgradeHTTP accepted a non-websocket request")
		}
	}))
	defer ts.Close()

	// Plain GET: no upgrade headers.
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("plain GET status = %d, want 400", resp.StatusCode)
	}

	// POST with upgrade headers: wrong method.
	req, _ := http.NewRequest(http.MethodPost, ts.URL, strings.NewReader(""))
	req.Header.Set("Connection", "Upgrade")
	req.Header.Set("Upgrade", "websocket")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d, want 405", resp.StatusCode)
	}
}

func TestDialWSRefusesTLS(t *testing.T) {
	ctx := context.Background()
	for _, target := range []string{"wss://example.invalid", "https://example.invalid"} {
		if _, err := DialWS(ctx, target); err == nil {
			t.Errorf("DialWS(%q) succeeded, want refusal", target)
		}
	}
}
