// Package synth generates synthetic 3-axis human-motion acceleration
// signals for the six activities of the AdaSense paper (sit, stand, lie
// down, walk, go upstairs, go downstairs), together with activity schedules
// that drive the closed-loop experiments.
//
// The paper evaluated on accelerometer recordings of human subjects; those
// recordings are not available, so this package substitutes a parametric
// model that preserves the two signal properties the paper's classifier
// depends on:
//
//  1. static postures (sit/stand/lie) differ in the orientation of the
//     gravity vector, captured by per-axis means, and
//  2. locomotion activities (walk/upstairs/downstairs) differ in gait
//     fundamental frequency and harmonic mix below ~5 Hz, captured by the
//     per-axis standard deviation and low-frequency Fourier magnitudes.
//
// Signals are continuous-time: deterministic components (gravity, gait
// harmonics, postural sway) are evaluated analytically at any t, and their
// average over an arbitrary interval has a closed form, so the sensor model
// can implement averaging windows exactly without synthesizing a dense
// internal-rate sample stream.
package synth

import (
	"fmt"
	"math"

	"adasense/internal/rng"
)

// Gravity is the gravitational acceleration magnitude in m/s².
const Gravity = 9.80665

// Activity identifies one of the six daily activities recognized by the
// framework.
type Activity int

// The six activity classes, in the paper's enumeration order.
const (
	Sit Activity = iota
	Stand
	LieDown
	Walk
	Upstairs
	Downstairs

	// NumActivities is the number of activity classes.
	NumActivities = 6
)

var activityNames = [NumActivities]string{"sit", "stand", "lie", "walk", "upstairs", "downstairs"}

// String returns the lowercase activity name.
func (a Activity) String() string {
	if a < 0 || int(a) >= NumActivities {
		return fmt.Sprintf("activity(%d)", int(a))
	}
	return activityNames[a]
}

// Valid reports whether a names one of the six classes.
func (a Activity) Valid() bool { return a >= 0 && int(a) < NumActivities }

// IsStatic reports whether the activity is a static posture (sit, stand,
// lie down) as opposed to locomotion. The intensity-based baseline switches
// power modes on exactly this distinction.
func (a Activity) IsStatic() bool { return a == Sit || a == Stand || a == LieDown }

// ParseActivity converts a name (as produced by String) back to an
// Activity.
func ParseActivity(s string) (Activity, error) {
	for i, n := range activityNames {
		if n == s {
			return Activity(i), nil
		}
	}
	return 0, fmt.Errorf("synth: unknown activity %q", s)
}

// Vec3 is a 3-axis sample (x, y, z) in m/s².
type Vec3 [3]float64

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v[0] + w[0], v[1] + w[1], v[2] + w[2]} }

// Scale returns v scaled by k.
func (v Vec3) Scale(k float64) Vec3 { return Vec3{v[0] * k, v[1] * k, v[2] * k} }

// Norm returns the Euclidean norm of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v[0]*v[0] + v[1]*v[1] + v[2]*v[2]) }

// harmonicSpec describes one oscillatory component of an activity model:
// a multiple of the gait fundamental with per-axis amplitudes.
type harmonicSpec struct {
	mult float64 // frequency = mult * f0
	amp  Vec3    // nominal per-axis amplitude, m/s²
}

// Model is the generative description of one activity class. Models are
// population-level: each episode instantiates a model with per-episode
// (per-"subject") variation in orientation, fundamental frequency, phase
// and amplitude.
type Model struct {
	Activity Activity

	// gravityDir is the nominal unit direction of gravity in device
	// coordinates for this posture.
	gravityDir Vec3
	// orientJitter is the std (radians, small-angle) of the per-episode
	// orientation perturbation.
	orientJitter float64

	// f0Lo, f0Hi bound the gait fundamental frequency in Hz. Zero for
	// static postures (their harmonics use absolute frequencies).
	f0Lo, f0Hi float64
	harmonics  []harmonicSpec
	// absolute holds fixed-frequency components (sway, breathing) that do
	// not scale with f0. mult is interpreted as an absolute frequency.
	absolute []harmonicSpec

	// tremor is the broadband body/sensor-pickup noise standard deviation
	// in m/s² referenced to the sensor's internal sampling rate. Averaging
	// over w internal samples reduces it by sqrt(w).
	tremor float64

	// ampJitter bounds the per-episode uniform amplitude scale
	// [1-ampJitter, 1+ampJitter].
	ampJitter float64

	// detune adds a weak detuned copy of every gait harmonic at frequency
	// f·(1±detune), creating slow amplitude beating so spectral weights
	// drift within an episode. Real gait varies within a walk; without
	// this, one unlucky per-episode draw would misclassify every window
	// of a segment identically, which no real recording does.
	detune float64
}

// DefaultModels returns the six activity models used throughout the
// reproduction. The constants were chosen so that (a) static postures are
// separated by gravity orientation alone, (b) locomotion classes are
// separated by fundamental frequency (upstairs ≈ 1.1–1.4 Hz, walk ≈
// 1.6–1.9 Hz, downstairs ≈ 2.1–2.4 Hz) and harmonic richness, and (c) the
// residual class overlap leaves the trained classifier in the paper's
// 92–98 % accuracy band across sensor configurations rather than at a
// saturated 100 %.
func DefaultModels() [NumActivities]*Model {
	norm := func(v Vec3) Vec3 { return v.Scale(1 / v.Norm()) }
	return [NumActivities]*Model{
		Sit: {
			Activity:     Sit,
			gravityDir:   norm(Vec3{0.30, -0.92, 0.26}),
			orientJitter: 0.12,
			absolute: []harmonicSpec{
				{mult: 0.25, amp: Vec3{0.03, 0.05, 0.03}}, // breathing
				{mult: 0.70, amp: Vec3{0.02, 0.02, 0.02}}, // fidgeting
				// Slow postural drift: wobbles the apparent gravity
				// direction within an episode so window-level posture
				// errors decorrelate instead of persisting.
				{mult: 0.035, amp: Vec3{0.30, 0.20, 0.30}},
			},
			tremor:    0.5,
			ampJitter: 0.3,
		},
		Stand: {
			Activity:     Stand,
			gravityDir:   norm(Vec3{-0.08, -0.99, 0.10}),
			orientJitter: 0.12,
			absolute: []harmonicSpec{
				{mult: 0.40, amp: Vec3{0.09, 0.06, 0.09}},  // postural sway
				{mult: 0.25, amp: Vec3{0.03, 0.05, 0.03}},  // breathing
				{mult: 0.030, amp: Vec3{0.30, 0.20, 0.30}}, // slow drift
			},
			tremor:    0.55,
			ampJitter: 0.3,
		},
		LieDown: {
			Activity:     LieDown,
			gravityDir:   norm(Vec3{0.10, 0.16, 0.98}),
			orientJitter: 0.14,
			absolute: []harmonicSpec{
				{mult: 0.22, amp: Vec3{0.02, 0.03, 0.04}},  // breathing
				{mult: 0.028, amp: Vec3{0.25, 0.25, 0.20}}, // slow drift
			},
			tremor:    0.45,
			ampJitter: 0.3,
		},
		Walk: {
			Activity:     Walk,
			gravityDir:   norm(Vec3{-0.12, -0.97, 0.16}),
			orientJitter: 0.12,
			f0Lo:         1.55,
			f0Hi:         1.95,
			harmonics: []harmonicSpec{
				{mult: 1, amp: Vec3{0.80, 1.55, 0.60}},
				{mult: 2, amp: Vec3{0.45, 0.85, 0.35}},
				{mult: 3, amp: Vec3{0.18, 0.30, 0.15}},
				// Heel-strike impact content. Inaudible to the 1–3 Hz
				// feature bins at high sampling rates, but folded onto
				// them by aliasing at 12.5/6.25 Hz unless a wide
				// averaging window filters it first.
				{mult: 5, amp: Vec3{0.20, 0.35, 0.18}},
				{mult: 6, amp: Vec3{0.12, 0.20, 0.10}},
				// Jerk transients near 21-25 Hz: out of band at 50 Hz
				// and above, folded into the feature band at 25 Hz and
				// below unless the averaging window removes them.
				{mult: 13, amp: Vec3{0.15, 0.25, 0.12}},
			},
			tremor:    1.3,
			ampJitter: 0.3,
			detune:    0.05,
		},
		Upstairs: {
			Activity:     Upstairs,
			gravityDir:   norm(Vec3{-0.22, -0.95, 0.20}),
			orientJitter: 0.12,
			f0Lo:         1.05,
			f0Hi:         1.40,
			harmonics: []harmonicSpec{
				{mult: 1, amp: Vec3{0.95, 1.80, 0.70}},
				{mult: 2, amp: Vec3{0.40, 0.70, 0.30}},
				{mult: 6, amp: Vec3{0.22, 0.38, 0.18}}, // step impacts
				{mult: 8, amp: Vec3{0.12, 0.22, 0.10}},
				{mult: 17, amp: Vec3{0.12, 0.20, 0.10}}, // jerk transients
			},
			tremor:    1.4,
			ampJitter: 0.3,
			detune:    0.05,
		},
		Downstairs: {
			Activity:     Downstairs,
			gravityDir:   norm(Vec3{-0.16, -0.95, 0.26}),
			orientJitter: 0.12,
			f0Lo:         2.10,
			f0Hi:         2.50,
			harmonics: []harmonicSpec{
				{mult: 1, amp: Vec3{0.95, 1.60, 0.75}},
				{mult: 2, amp: Vec3{0.70, 1.10, 0.55}},
				{mult: 3, amp: Vec3{0.30, 0.45, 0.25}},
				// Downstairs descent is impact-rich: strong 8–12 Hz
				// content that aliases hard at low rates.
				{mult: 4, amp: Vec3{0.45, 0.70, 0.35}},
				{mult: 5, amp: Vec3{0.28, 0.45, 0.22}},
				{mult: 9.5, amp: Vec3{0.25, 0.40, 0.20}}, // jerk transients
			},
			tremor:    1.5,
			ampJitter: 0.3,
			detune:    0.05,
		},
	}
}

// component is one concrete sinusoid of an instantiated episode.
type component struct {
	freq  float64 // Hz
	amp   Vec3    // per-axis amplitude after episode scaling
	phase Vec3    // per-axis phase, radians
}

// Episode is one contiguous stretch of a single activity performed by one
// synthetic subject: a concrete instantiation of a Model with fixed
// orientation, fundamental frequency, phases and amplitude scale.
// Episodes are immutable after creation and safe for concurrent use.
type Episode struct {
	activity Activity
	gravity  Vec3 // full gravity vector, m/s²
	comps    []component
	tremor   float64
}

// NewEpisode instantiates the model with per-episode variation drawn from
// r.
func (m *Model) NewEpisode(r *rng.Source) *Episode {
	// Perturb the gravity direction (small-angle) and renormalize.
	dir := Vec3{
		m.gravityDir[0] + r.NormSigma(0, m.orientJitter),
		m.gravityDir[1] + r.NormSigma(0, m.orientJitter),
		m.gravityDir[2] + r.NormSigma(0, m.orientJitter),
	}
	dir = dir.Scale(1 / dir.Norm())

	scale := r.Uniform(1-m.ampJitter, 1+m.ampJitter)
	f0 := 0.0
	if m.f0Hi > 0 {
		f0 = r.Uniform(m.f0Lo, m.f0Hi)
	}

	ep := &Episode{
		activity: m.Activity,
		gravity:  dir.Scale(Gravity),
		tremor:   m.tremor,
	}
	addComp := func(freq float64, amp Vec3) {
		c := component{freq: freq, amp: amp.Scale(scale)}
		for ax := 0; ax < 3; ax++ {
			c.phase[ax] = r.Uniform(0, 2*math.Pi)
		}
		ep.comps = append(ep.comps, c)
	}
	for _, h := range m.harmonics {
		addComp(h.mult*f0, h.amp)
		if m.detune > 0 {
			// Weak detuned copy: beats against the main component with a
			// period of ~1/(f·detune) seconds, drifting the spectral
			// weights within the episode.
			detuned := h.mult * f0 * (1 + r.Uniform(-m.detune, m.detune))
			addComp(detuned, h.amp.Scale(0.35))
		}
	}
	for _, h := range m.absolute {
		addComp(h.mult, h.amp)
	}
	return ep
}

// Activity returns the episode's activity class.
func (e *Episode) Activity() Activity { return e.activity }

// Tremor returns the broadband noise std (m/s², referenced to the sensor's
// internal rate) for this episode.
func (e *Episode) Tremor() float64 { return e.tremor }

// Eval returns the deterministic (noise-free) acceleration at time t
// seconds.
func (e *Episode) Eval(t float64) Vec3 {
	v := e.gravity
	for _, c := range e.comps {
		w := 2 * math.Pi * c.freq
		for ax := 0; ax < 3; ax++ {
			v[ax] += c.amp[ax] * math.Sin(w*t+c.phase[ax])
		}
	}
	return v
}

// AvgEval returns the exact time average of the deterministic acceleration
// over the interval [t0, t1]. For t1 <= t0 it returns Eval(t0). This is
// what an idealized averaging sensor front-end measures.
func (e *Episode) AvgEval(t0, t1 float64) Vec3 {
	if t1 <= t0 {
		return e.Eval(t0)
	}
	v := e.gravity
	dt := t1 - t0
	for _, c := range e.comps {
		w := 2 * math.Pi * c.freq
		if w == 0 {
			for ax := 0; ax < 3; ax++ {
				v[ax] += c.amp[ax] * math.Sin(c.phase[ax])
			}
			continue
		}
		// (1/dt) ∫ sin(w t + φ) dt = (cos(w t0 + φ) - cos(w t1 + φ)) / (w dt)
		for ax := 0; ax < 3; ax++ {
			v[ax] += c.amp[ax] * (math.Cos(w*t0+c.phase[ax]) - math.Cos(w*t1+c.phase[ax])) / (w * dt)
		}
	}
	return v
}
