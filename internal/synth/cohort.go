package synth

import (
	"fmt"
	"sort"

	"adasense/internal/rng"
)

// Cohort schedule generators. A fleet is not one homogeneous population:
// an elderly-monitoring deployment is dominated by long sedentary spans,
// a rehab program alternates prescribed exercise and rest, a drifting
// user becomes more volatile over the horizon, and an adversarial device
// hammers the SPOT controller with rapid activity flips. Each generator
// below is a pure function of its rng.Source, so a fleet seeded from one
// master source is reproducible device-for-device.

// chain accumulates segments toward a fixed horizon, absorbing the final
// sliver (< 0.5 s) into the previous segment exactly as RandomSchedule
// does, so every generated schedule is valid by construction.
type chain struct {
	segs []Segment
	t    float64
	lim  float64
}

// add appends one dwell and reports whether the chain still has room.
func (c *chain) add(a Activity, d float64) bool {
	if c.t >= c.lim {
		return false
	}
	if c.t+d > c.lim {
		d = c.lim - c.t
		if d <= 0.5 {
			if len(c.segs) > 0 {
				c.segs[len(c.segs)-1].Duration += d
				c.t = c.lim
				return false
			}
			d = 1
		}
	}
	c.segs = append(c.segs, Segment{Activity: a, Duration: d})
	c.t += d
	return c.t < c.lim
}

func (c *chain) schedule() *Schedule {
	s, err := NewSchedule(c.segs)
	if err != nil {
		panic(err) // unreachable: add guarantees validity
	}
	return s
}

// pickWeighted draws an activity proportionally to weights, excluding one
// class (pass an invalid Activity such as -1 to exclude nothing). At
// least one non-excluded class must carry positive weight.
func pickWeighted(r *rng.Source, weights [NumActivities]float64, exclude Activity) Activity {
	total := 0.0
	for a, w := range weights {
		if Activity(a) != exclude {
			total += w
		}
	}
	if total <= 0 {
		panic("synth: pickWeighted with no positive weight outside the excluded class")
	}
	x := r.Float64() * total
	last := exclude
	for a, w := range weights {
		if Activity(a) == exclude || w <= 0 {
			continue
		}
		last = Activity(a)
		x -= w
		if x < 0 {
			return last
		}
	}
	return last // float round-off: the final positive-weight class
}

// WeightedSchedule generates a schedule of approximately totalSec seconds
// whose dwell times are uniform in [dwellLo, dwellHi] and whose successive
// activities are drawn proportionally to weights, never repeating the
// current activity (a weighted Markov chain). At least two classes must
// carry positive weight.
func WeightedSchedule(r *rng.Source, totalSec, dwellLo, dwellHi float64, weights [NumActivities]float64) *Schedule {
	if totalSec <= 0 {
		panic("synth: WeightedSchedule with non-positive duration")
	}
	if dwellLo <= 0 || dwellHi < dwellLo {
		panic("synth: WeightedSchedule with invalid dwell bounds")
	}
	positive := 0
	for _, w := range weights {
		if w < 0 {
			panic("synth: WeightedSchedule with negative weight")
		}
		if w > 0 {
			positive++
		}
	}
	if positive < 2 {
		panic("synth: WeightedSchedule needs at least two positive weights")
	}
	c := chain{lim: totalSec}
	cur := pickWeighted(r, weights, Activity(-1))
	for c.add(cur, r.Uniform(dwellLo, dwellHi)) {
		cur = pickWeighted(r, weights, cur)
	}
	return c.schedule()
}

// ElderlySchedule models an elderly-monitoring cohort: long dwells (the
// paper's Low-change setting) dominated by sitting and lying, with
// occasional short walks and rare stair use — the examples/elderly
// profile as a generator.
func ElderlySchedule(r *rng.Source, totalSec float64) *Schedule {
	lo, hi := LowChange.DwellBounds()
	return WeightedSchedule(r, totalSec, lo, hi, [NumActivities]float64{
		Sit:        0.34,
		Stand:      0.18,
		LieDown:    0.26,
		Walk:       0.16,
		Upstairs:   0.03,
		Downstairs: 0.03,
	})
}

// RehabSchedule models a prescribed-rehabilitation cohort: repeating
// exercise blocks (walk, stairs) separated by seated or lying rest, with
// jittered durations — the examples/rehab profile as a generator.
func RehabSchedule(r *rng.Source, totalSec float64) *Schedule {
	if totalSec <= 0 {
		panic("synth: RehabSchedule with non-positive duration")
	}
	c := chain{lim: totalSec}
	for {
		if !c.add(Walk, r.Uniform(40, 70)) {
			break
		}
		if !c.add(Sit, r.Uniform(45, 75)) {
			break
		}
		if !c.add(Upstairs, r.Uniform(12, 22)) {
			break
		}
		if !c.add(Stand, r.Uniform(15, 30)) {
			break
		}
		if !c.add(Downstairs, r.Uniform(12, 22)) {
			break
		}
		if !c.add(LieDown, r.Uniform(60, 90)) {
			break
		}
	}
	return c.schedule()
}

// DriftSchedule models a user whose volatility drifts over the horizon:
// dwell bounds interpolate linearly from the Low-change setting at t=0 to
// the High-change setting at t=totalSec, so a controller tuned on the
// early traffic sees a different regime by the end.
func DriftSchedule(r *rng.Source, totalSec float64) *Schedule {
	if totalSec <= 0 {
		panic("synth: DriftSchedule with non-positive duration")
	}
	loStart, hiStart := LowChange.DwellBounds()
	loEnd, hiEnd := HighChange.DwellBounds()
	c := chain{lim: totalSec}
	cur := Activity(r.Intn(NumActivities))
	for {
		frac := c.t / totalSec
		lo := loStart + (loEnd-loStart)*frac
		hi := hiStart + (hiEnd-hiStart)*frac
		if !c.add(cur, r.Uniform(lo, hi)) {
			break
		}
		next := Activity(r.Intn(NumActivities - 1))
		if next >= cur {
			next++
		}
		cur = next
	}
	return c.schedule()
}

// BurstSchedule models an adversarial device: calm sedentary stretches
// interrupted by bursts of rapid flips between the locomotion classes
// (2–4 s dwells), the worst case for the SPOT controller's dwell
// estimator and for any per-push work that scales with config churn.
func BurstSchedule(r *rng.Source, totalSec float64) *Schedule {
	if totalSec <= 0 {
		panic("synth: BurstSchedule with non-positive duration")
	}
	calm := [NumActivities]float64{Sit: 0.4, Stand: 0.3, LieDown: 0.3}
	locomotion := []Activity{Walk, Upstairs, Downstairs}
	c := chain{lim: totalSec}
	for {
		// Calm phase: one long sedentary dwell.
		if !c.add(pickWeighted(r, calm, Activity(-1)), r.Uniform(45, 75)) {
			break
		}
		// Burst phase: rapid locomotion flips for 20–30 s.
		burstEnd := c.t + r.Uniform(20, 30)
		if burstEnd > totalSec {
			burstEnd = totalSec
		}
		cur := locomotion[r.Intn(len(locomotion))]
		more := true
		for more && c.t < burstEnd {
			more = c.add(cur, r.Uniform(2, 4))
			next := locomotion[r.Intn(len(locomotion)-1)]
			if next == cur {
				next = locomotion[len(locomotion)-1]
			}
			cur = next
		}
		if !more {
			break
		}
	}
	return c.schedule()
}

// cohortBuilders maps the loadgen scenario-grammar cohort names onto
// generators. The high/medium/low entries expose the paper's Fig. 7
// activity-change settings directly.
var cohortBuilders = map[string]func(r *rng.Source, totalSec float64) *Schedule{
	"elderly": ElderlySchedule,
	"rehab":   RehabSchedule,
	"drift":   DriftSchedule,
	"burst":   BurstSchedule,
	"high": func(r *rng.Source, totalSec float64) *Schedule {
		return SettingSchedule(r, HighChange, totalSec)
	},
	"medium": func(r *rng.Source, totalSec float64) *Schedule {
		return SettingSchedule(r, MediumChange, totalSec)
	},
	"low": func(r *rng.Source, totalSec float64) *Schedule {
		return SettingSchedule(r, LowChange, totalSec)
	},
}

// CohortNames returns the schedule-generator names CohortSchedule
// accepts, sorted.
func CohortNames() []string {
	names := make([]string, 0, len(cohortBuilders))
	for n := range cohortBuilders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CohortSchedule generates a schedule for a named cohort profile. It is
// the string-keyed entry point the loadgen scenario grammar resolves
// through.
func CohortSchedule(name string, r *rng.Source, totalSec float64) (*Schedule, error) {
	b, ok := cohortBuilders[name]
	if !ok {
		return nil, fmt.Errorf("synth: unknown cohort %q (have %v)", name, CohortNames())
	}
	return b(r, totalSec), nil
}
