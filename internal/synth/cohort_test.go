package synth

import (
	"reflect"
	"testing"

	"adasense/internal/rng"
)

func TestCohortSchedulesValidAndDeterministic(t *testing.T) {
	const total = 1800.0
	for _, name := range CohortNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			a, err := CohortSchedule(name, rng.New(7), total)
			if err != nil {
				t.Fatal(err)
			}
			b, err := CohortSchedule(name, rng.New(7), total)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a.Segments(), b.Segments()) {
				t.Fatalf("cohort %q not deterministic for the same seed", name)
			}
			if a.Total() != total {
				t.Fatalf("cohort %q total = %v, want %v", name, a.Total(), total)
			}
			for i, seg := range a.Segments() {
				if seg.Duration <= 0 || !seg.Activity.Valid() {
					t.Fatalf("cohort %q segment %d invalid: %+v", name, i, seg)
				}
			}
			c, err := CohortSchedule(name, rng.New(8), total)
			if err != nil {
				t.Fatal(err)
			}
			if reflect.DeepEqual(a.Segments(), c.Segments()) {
				t.Fatalf("cohort %q identical across different seeds", name)
			}
		})
	}
}

func TestCohortScheduleUnknown(t *testing.T) {
	if _, err := CohortSchedule("astronaut", rng.New(1), 60); err == nil {
		t.Fatal("unknown cohort accepted")
	}
}

// TestElderlyScheduleSedentary checks the elderly profile's defining
// property: most wall time is spent in the static classes.
func TestElderlyScheduleSedentary(t *testing.T) {
	s := ElderlySchedule(rng.New(3), 4*3600)
	static := 0.0
	for _, seg := range s.Segments() {
		if seg.Activity.IsStatic() {
			static += seg.Duration
		}
	}
	if frac := static / s.Total(); frac < 0.55 {
		t.Fatalf("elderly static share = %.2f, want >= 0.55", frac)
	}
}

// TestBurstScheduleHasRapidFlips checks the adversarial profile emits
// genuinely short locomotion dwells between calm stretches.
func TestBurstScheduleHasRapidFlips(t *testing.T) {
	s := BurstSchedule(rng.New(5), 1200)
	short, calm := 0, 0
	for _, seg := range s.Segments() {
		if !seg.Activity.IsStatic() && seg.Duration <= 4 {
			short++
		}
		if seg.Activity.IsStatic() && seg.Duration >= 40 {
			calm++
		}
	}
	if short < 10 || calm < 3 {
		t.Fatalf("burst profile: %d rapid locomotion dwells, %d calm stretches; want >= 10 and >= 3", short, calm)
	}
}

// TestDriftScheduleVolatilityIncreases checks dwell times shrink across
// the horizon: the second half must switch activity markedly more often
// than the first.
func TestDriftScheduleVolatilityIncreases(t *testing.T) {
	s := DriftSchedule(rng.New(11), 2*3600)
	mid := s.Total() / 2
	var firstN, secondN int
	t0 := 0.0
	for _, seg := range s.Segments() {
		if t0 < mid {
			firstN++
		} else {
			secondN++
		}
		t0 += seg.Duration
	}
	if secondN < 2*firstN {
		t.Fatalf("drift: %d segments in first half, %d in second; want second >= 2x first", firstN, secondN)
	}
}

func TestRehabScheduleAlternates(t *testing.T) {
	s := RehabSchedule(rng.New(2), 3600)
	segs := s.Segments()
	walks := 0
	for _, seg := range segs {
		if seg.Activity == Walk {
			walks++
		}
	}
	if walks < 3 {
		t.Fatalf("rehab: only %d walk blocks in an hour, want >= 3", walks)
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].Activity == segs[i-1].Activity {
			t.Fatalf("rehab: consecutive segments %d,%d share activity %v", i-1, i, segs[i].Activity)
		}
	}
}
