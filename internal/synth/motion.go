package synth

import "adasense/internal/rng"

// Motion binds a Schedule to concrete per-segment Episodes, producing the
// continuous ground-truth acceleration signal a sensor samples from. Each
// segment gets a freshly instantiated episode so that, e.g., two separate
// walking stretches have different cadence and phase, just as two separate
// real walks would.
//
// Motion is immutable after construction and safe for concurrent readers.
type Motion struct {
	schedule *Schedule
	episodes []*Episode
}

// NewMotion instantiates one episode per segment of the schedule using the
// given models and randomness source. The source is consumed during
// construction only; evaluation afterwards is deterministic.
func NewMotion(models [NumActivities]*Model, schedule *Schedule, r *rng.Source) *Motion {
	m := &Motion{schedule: schedule}
	for _, seg := range schedule.segments {
		m.episodes = append(m.episodes, models[seg.Activity].NewEpisode(r))
	}
	return m
}

// Schedule returns the underlying ground-truth schedule.
func (m *Motion) Schedule() *Schedule { return m.schedule }

// Duration returns the total signal duration in seconds.
func (m *Motion) Duration() float64 { return m.schedule.Total() }

// Eval returns the deterministic acceleration at time t. Times are clamped
// to [0, Duration].
func (m *Motion) Eval(t float64) Vec3 {
	i := m.schedule.index(t)
	return m.episodes[i].Eval(t)
}

// Tremor returns the broadband noise std in effect at time t (m/s²,
// referenced to the sensor's internal rate).
func (m *Motion) Tremor(t float64) float64 {
	return m.episodes[m.schedule.index(t)].Tremor()
}

// AvgEval returns the exact time average of the deterministic acceleration
// over [t0, t1]. If the interval straddles one or more segment boundaries
// the integral is split at each boundary so that the averaging-window
// physics remain exact across activity transitions — precisely the moments
// the SPOT controller reacts to.
func (m *Motion) AvgEval(t0, t1 float64) Vec3 {
	if t1 <= t0 {
		return m.Eval(t0)
	}
	i0, i1 := m.schedule.index(t0), m.schedule.index(t1)
	if i0 == i1 {
		return m.episodes[i0].AvgEval(t0, t1)
	}
	var acc Vec3
	total := t1 - t0
	t := t0
	for i := i0; i <= i1; i++ {
		end := m.schedule.starts[i] + m.schedule.segments[i].Duration
		if i == i1 || end > t1 {
			end = t1
		}
		if end <= t {
			continue
		}
		part := m.episodes[i].AvgEval(t, end)
		acc = acc.Add(part.Scale((end - t) / total))
		t = end
	}
	return acc
}
