package synth

import (
	"fmt"

	"adasense/internal/rng"
)

// Segment is one contiguous activity span in a schedule.
type Segment struct {
	Activity Activity
	Duration float64 // seconds, > 0
}

// Schedule is an ordered sequence of activity segments describing what the
// synthetic user does over time. It is the ground truth against which
// recognition accuracy is scored.
type Schedule struct {
	segments []Segment
	starts   []float64 // start time of each segment
	total    float64
}

// NewSchedule builds a schedule from segments. It returns an error if any
// segment has a non-positive duration or an invalid activity.
func NewSchedule(segments []Segment) (*Schedule, error) {
	if len(segments) == 0 {
		return nil, fmt.Errorf("synth: empty schedule")
	}
	s := &Schedule{segments: append([]Segment(nil), segments...)}
	t := 0.0
	for i, seg := range s.segments {
		if seg.Duration <= 0 {
			return nil, fmt.Errorf("synth: segment %d has non-positive duration %v", i, seg.Duration)
		}
		if !seg.Activity.Valid() {
			return nil, fmt.Errorf("synth: segment %d has invalid activity %d", i, int(seg.Activity))
		}
		s.starts = append(s.starts, t)
		t += seg.Duration
	}
	s.total = t
	return s, nil
}

// MustSchedule is NewSchedule that panics on error, for literals in tests
// and examples.
func MustSchedule(segments ...Segment) *Schedule {
	s, err := NewSchedule(segments)
	if err != nil {
		panic(err)
	}
	return s
}

// Total returns the schedule duration in seconds.
func (s *Schedule) Total() float64 { return s.total }

// Segments returns a copy of the schedule's segments.
func (s *Schedule) Segments() []Segment { return append([]Segment(nil), s.segments...) }

// index returns the segment index containing time t (clamped to the ends).
func (s *Schedule) index(t float64) int {
	if t <= 0 {
		return 0
	}
	if t >= s.total {
		return len(s.segments) - 1
	}
	// Binary search over starts: the largest i with starts[i] <= t.
	lo, hi := 0, len(s.starts)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if s.starts[mid] <= t {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// ActivityAt returns the ground-truth activity at time t. Times outside
// [0, Total) clamp to the first/last segment.
func (s *Schedule) ActivityAt(t float64) Activity {
	return s.segments[s.index(t)].Activity
}

// DominantActivity returns the activity occupying the largest fraction of
// the interval [t0, t1]. Recognition over a 2-second window that straddles
// a transition is scored against the window's dominant ground truth.
func (s *Schedule) DominantActivity(t0, t1 float64) Activity {
	if t1 <= t0 {
		return s.ActivityAt(t0)
	}
	var share [NumActivities]float64
	i := s.index(t0)
	t := t0
	for t < t1 && i < len(s.segments) {
		end := s.starts[i] + s.segments[i].Duration
		if end > t1 {
			end = t1
		}
		if end > t {
			share[s.segments[i].Activity] += end - t
			t = end
		}
		i++
	}
	best := Activity(0)
	for a := Activity(1); int(a) < NumActivities; a++ {
		if share[a] > share[best] {
			best = a
		}
	}
	return best
}

// Transitions returns the times at which the activity changes (segment
// boundaries, excluding t=0 and t=Total).
func (s *Schedule) Transitions() []float64 {
	var out []float64
	for i := 1; i < len(s.starts); i++ {
		out = append(out, s.starts[i])
	}
	return out
}

// ChangeSetting names the user-activity volatility settings of the paper's
// Fig. 7 comparison.
type ChangeSetting int

// The three settings: High changes activity roughly every 10 s, Medium
// every ~30 s, Low holds each activity for at least a minute.
const (
	HighChange ChangeSetting = iota
	MediumChange
	LowChange
)

// String returns the paper's setting label.
func (c ChangeSetting) String() string {
	switch c {
	case HighChange:
		return "High"
	case MediumChange:
		return "Medium"
	case LowChange:
		return "Low"
	default:
		return fmt.Sprintf("ChangeSetting(%d)", int(c))
	}
}

// DwellBounds returns the [lo, hi] uniform dwell-time range in seconds for
// the setting, matching the paper's description: High = activity changes
// every ~10 s, Low = the user takes at least one minute to change.
func (c ChangeSetting) DwellBounds() (lo, hi float64) {
	switch c {
	case HighChange:
		return 8, 12
	case MediumChange:
		return 25, 40
	case LowChange:
		return 60, 90
	default:
		return 25, 40
	}
}

// RandomSchedule generates a schedule of approximately totalSec seconds
// whose dwell times are uniform in [dwellLo, dwellHi] and whose successive
// activities are drawn uniformly from the classes other than the current
// one (a symmetric Markov chain over the six activities).
func RandomSchedule(r *rng.Source, totalSec, dwellLo, dwellHi float64) *Schedule {
	if totalSec <= 0 {
		panic("synth: RandomSchedule with non-positive duration")
	}
	if dwellLo <= 0 || dwellHi < dwellLo {
		panic("synth: RandomSchedule with invalid dwell bounds")
	}
	var segs []Segment
	cur := Activity(r.Intn(NumActivities))
	t := 0.0
	for t < totalSec {
		d := r.Uniform(dwellLo, dwellHi)
		if t+d > totalSec {
			d = totalSec - t
			if d <= 0.5 { // absorb a sliver into the previous segment
				if len(segs) > 0 {
					segs[len(segs)-1].Duration += d
					break
				}
				d = 1
			}
		}
		segs = append(segs, Segment{Activity: cur, Duration: d})
		t += d
		// Next activity: uniform over the other five classes.
		next := Activity(r.Intn(NumActivities - 1))
		if next >= cur {
			next++
		}
		cur = next
	}
	s, err := NewSchedule(segs)
	if err != nil {
		panic(err) // unreachable: construction guarantees validity
	}
	return s
}

// SettingSchedule generates a schedule for one of Fig. 7's activity-change
// settings.
func SettingSchedule(r *rng.Source, setting ChangeSetting, totalSec float64) *Schedule {
	lo, hi := setting.DwellBounds()
	return RandomSchedule(r, totalSec, lo, hi)
}
