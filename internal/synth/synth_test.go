package synth

import (
	"math"
	"testing"
	"testing/quick"

	"adasense/internal/rng"
)

func TestActivityString(t *testing.T) {
	if Walk.String() != "walk" || Downstairs.String() != "downstairs" {
		t.Fatal("activity names wrong")
	}
	if Activity(99).String() != "activity(99)" {
		t.Fatal("out-of-range name wrong")
	}
}

func TestParseActivityRoundTrip(t *testing.T) {
	for a := Activity(0); int(a) < NumActivities; a++ {
		got, err := ParseActivity(a.String())
		if err != nil || got != a {
			t.Fatalf("round trip failed for %v: %v %v", a, got, err)
		}
	}
	if _, err := ParseActivity("flying"); err == nil {
		t.Fatal("ParseActivity accepted junk")
	}
}

func TestIsStatic(t *testing.T) {
	static := map[Activity]bool{Sit: true, Stand: true, LieDown: true, Walk: false, Upstairs: false, Downstairs: false}
	for a, want := range static {
		if a.IsStatic() != want {
			t.Fatalf("IsStatic(%v) = %v", a, !want)
		}
	}
}

func TestEpisodeGravityMagnitude(t *testing.T) {
	models := DefaultModels()
	r := rng.New(1)
	for _, m := range models {
		ep := m.NewEpisode(r)
		if g := ep.gravity.Norm(); math.Abs(g-Gravity) > 1e-9 {
			t.Fatalf("%v: gravity magnitude %v", m.Activity, g)
		}
	}
}

func TestEpisodeDeterministicEval(t *testing.T) {
	models := DefaultModels()
	ep := models[Walk].NewEpisode(rng.New(7))
	a := ep.Eval(1.234)
	b := ep.Eval(1.234)
	if a != b {
		t.Fatal("Eval is not deterministic")
	}
}

// TestAvgEvalMatchesNumericalIntegration is the key physics property: the
// closed-form windowed average must agree with brute-force numerical
// averaging of the same signal.
func TestAvgEvalMatchesNumericalIntegration(t *testing.T) {
	models := DefaultModels()
	r := rng.New(11)
	for _, act := range []Activity{Sit, Walk, Downstairs} {
		ep := models[act].NewEpisode(r)
		t0, t1 := 3.1, 3.9
		got := ep.AvgEval(t0, t1)
		const steps = 20000
		var num Vec3
		dt := (t1 - t0) / steps
		for i := 0; i < steps; i++ {
			v := ep.Eval(t0 + (float64(i)+0.5)*dt)
			num = num.Add(v.Scale(dt / (t1 - t0)))
		}
		for ax := 0; ax < 3; ax++ {
			if math.Abs(got[ax]-num[ax]) > 1e-6 {
				t.Fatalf("%v axis %d: analytic %v numeric %v", act, ax, got[ax], num[ax])
			}
		}
	}
}

func TestAvgEvalDegenerateInterval(t *testing.T) {
	ep := DefaultModels()[Walk].NewEpisode(rng.New(3))
	if ep.AvgEval(2, 2) != ep.Eval(2) {
		t.Fatal("degenerate interval should reduce to Eval")
	}
}

func TestAvgEvalAttenuatesHighFrequencies(t *testing.T) {
	// Averaging over a window much longer than the gait period should pull
	// the reading toward pure gravity (oscillations integrate out).
	ep := DefaultModels()[Walk].NewEpisode(rng.New(5))
	instant := ep.Eval(10)
	long := ep.AvgEval(0, 20)
	devInstant := instant.Add(ep.gravity.Scale(-1)).Norm()
	devLong := long.Add(ep.gravity.Scale(-1)).Norm()
	if devLong > devInstant/5 && devLong > 0.1 {
		t.Fatalf("long average did not attenuate oscillation: instant dev %v, long dev %v", devInstant, devLong)
	}
}

func TestStaticVsDynamicVariance(t *testing.T) {
	// Locomotion must produce visibly larger signal variance than postures;
	// otherwise the intensity baseline and the classifier have nothing to
	// work with.
	models := DefaultModels()
	r := rng.New(9)
	variance := func(a Activity) float64 {
		ep := models[a].NewEpisode(r)
		var sum, sumSq float64
		const n = 2000
		for i := 0; i < n; i++ {
			v := ep.Eval(float64(i) * 0.01)
			mag := v.Norm()
			sum += mag
			sumSq += mag * mag
		}
		mean := sum / n
		return sumSq/n - mean*mean
	}
	vSit := variance(Sit)
	vWalk := variance(Walk)
	if vWalk < 10*vSit {
		t.Fatalf("walk variance %v not well above sit variance %v", vWalk, vSit)
	}
}

func TestGravityOrientationsSeparate(t *testing.T) {
	// The three postures must have pairwise-distinct gravity directions;
	// mean features are their only separator.
	models := DefaultModels()
	dirs := []Vec3{models[Sit].gravityDir, models[Stand].gravityDir, models[LieDown].gravityDir}
	for i := 0; i < len(dirs); i++ {
		for j := i + 1; j < len(dirs); j++ {
			dot := dirs[i][0]*dirs[j][0] + dirs[i][1]*dirs[j][1] + dirs[i][2]*dirs[j][2]
			if dot > 0.95 {
				t.Fatalf("postures %d and %d nearly parallel (dot=%v)", i, j, dot)
			}
		}
	}
}

func TestFundamentalBandsDisjoint(t *testing.T) {
	models := DefaultModels()
	type band struct{ lo, hi float64 }
	bands := []band{
		{models[Upstairs].f0Lo, models[Upstairs].f0Hi},
		{models[Walk].f0Lo, models[Walk].f0Hi},
		{models[Downstairs].f0Lo, models[Downstairs].f0Hi},
	}
	for i := 0; i+1 < len(bands); i++ {
		if bands[i].hi >= bands[i+1].lo {
			t.Fatalf("fundamental bands overlap: %v vs %v", bands[i], bands[i+1])
		}
	}
}

// --- Schedule ---

func TestNewScheduleValidation(t *testing.T) {
	if _, err := NewSchedule(nil); err == nil {
		t.Fatal("empty schedule accepted")
	}
	if _, err := NewSchedule([]Segment{{Walk, 0}}); err == nil {
		t.Fatal("zero-duration segment accepted")
	}
	if _, err := NewSchedule([]Segment{{Activity(77), 5}}); err == nil {
		t.Fatal("invalid activity accepted")
	}
}

func TestScheduleLookup(t *testing.T) {
	s := MustSchedule(Segment{Sit, 60}, Segment{Walk, 60})
	if s.Total() != 120 {
		t.Fatalf("Total = %v", s.Total())
	}
	cases := map[float64]Activity{0: Sit, 30: Sit, 59.999: Sit, 60: Walk, 119: Walk, 500: Walk, -3: Sit}
	for tt, want := range cases {
		if got := s.ActivityAt(tt); got != want {
			t.Fatalf("ActivityAt(%v) = %v, want %v", tt, got, want)
		}
	}
}

func TestScheduleTransitions(t *testing.T) {
	s := MustSchedule(Segment{Sit, 10}, Segment{Walk, 20}, Segment{Stand, 5})
	tr := s.Transitions()
	if len(tr) != 2 || tr[0] != 10 || tr[1] != 30 {
		t.Fatalf("Transitions = %v", tr)
	}
}

func TestDominantActivity(t *testing.T) {
	s := MustSchedule(Segment{Sit, 10}, Segment{Walk, 10})
	if got := s.DominantActivity(8.5, 10.5); got != Sit {
		t.Fatalf("window mostly sit classified as %v", got)
	}
	if got := s.DominantActivity(9.5, 11.5); got != Walk {
		t.Fatalf("window mostly walk classified as %v", got)
	}
	if got := s.DominantActivity(5, 5); got != Sit {
		t.Fatalf("degenerate dominant = %v", got)
	}
}

func TestScheduleIndexProperty(t *testing.T) {
	r := rng.New(21)
	f := func(seed uint16) bool {
		rr := rng.New(uint64(seed))
		s := RandomSchedule(rr, 300, 5, 30)
		// ActivityAt must agree with a linear scan at random times.
		for k := 0; k < 50; k++ {
			tt := r.Uniform(0, 300)
			var want Activity
			acc := 0.0
			for _, seg := range s.Segments() {
				if tt < acc+seg.Duration {
					want = seg.Activity
					break
				}
				acc += seg.Duration
				want = seg.Activity
			}
			if s.ActivityAt(tt) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomScheduleProperties(t *testing.T) {
	r := rng.New(33)
	s := RandomSchedule(r, 600, 10, 20)
	if math.Abs(s.Total()-600) > 1e-9 {
		t.Fatalf("Total = %v, want 600", s.Total())
	}
	segs := s.Segments()
	for i := 1; i < len(segs); i++ {
		if segs[i].Activity == segs[i-1].Activity {
			t.Fatal("consecutive segments share an activity")
		}
	}
	for i, seg := range segs {
		// Last segment may be truncated/extended by the sliver rule.
		if i < len(segs)-1 && (seg.Duration < 10 || seg.Duration > 20+1) {
			t.Fatalf("segment %d duration %v outside dwell bounds", i, seg.Duration)
		}
	}
}

func TestSettingDwellBounds(t *testing.T) {
	hiLo, hiHi := HighChange.DwellBounds()
	loLo, loHi := LowChange.DwellBounds()
	if hiHi >= loLo {
		t.Fatalf("High (%v-%v) and Low (%v-%v) dwell bounds should be well separated", hiLo, hiHi, loLo, loHi)
	}
	if LowChange.DwellBounds(); loLo < 60 {
		t.Fatal("Low setting must dwell at least 60 s per the paper")
	}
	if HighChange.String() != "High" || MediumChange.String() != "Medium" || LowChange.String() != "Low" {
		t.Fatal("setting names wrong")
	}
}

// --- Motion ---

func TestMotionSegmentsGetDistinctEpisodes(t *testing.T) {
	models := DefaultModels()
	s := MustSchedule(Segment{Walk, 30}, Segment{Sit, 10}, Segment{Walk, 30})
	m := NewMotion(models, s, rng.New(13))
	// Two walk segments should differ (different phases/cadence).
	a := m.Eval(5)
	b := m.Eval(45) // same offset into the second walk segment: 45-40=5
	if a == b {
		t.Fatal("distinct walk segments produced identical signals")
	}
}

func TestMotionAvgAcrossBoundary(t *testing.T) {
	models := DefaultModels()
	s := MustSchedule(Segment{Sit, 10}, Segment{Walk, 10})
	m := NewMotion(models, s, rng.New(17))
	got := m.AvgEval(9.5, 10.5)
	const steps = 40000
	var num Vec3
	dt := 1.0 / steps
	for i := 0; i < steps; i++ {
		v := m.Eval(9.5 + (float64(i)+0.5)*dt)
		num = num.Add(v.Scale(dt / 1.0))
	}
	for ax := 0; ax < 3; ax++ {
		if math.Abs(got[ax]-num[ax]) > 1e-5 {
			t.Fatalf("axis %d: analytic %v numeric %v", ax, got[ax], num[ax])
		}
	}
}

func TestMotionTremorFollowsSchedule(t *testing.T) {
	models := DefaultModels()
	s := MustSchedule(Segment{Sit, 10}, Segment{Downstairs, 10})
	m := NewMotion(models, s, rng.New(19))
	if m.Tremor(5) >= m.Tremor(15) {
		t.Fatal("downstairs should be noisier than sitting")
	}
}

func TestVec3Ops(t *testing.T) {
	v := Vec3{1, 2, 2}
	if v.Norm() != 3 {
		t.Fatalf("Norm = %v", v.Norm())
	}
	if got := v.Add(Vec3{1, 1, 1}); got != (Vec3{2, 3, 3}) {
		t.Fatalf("Add = %v", got)
	}
	if got := v.Scale(2); got != (Vec3{2, 4, 4}) {
		t.Fatalf("Scale = %v", got)
	}
}
