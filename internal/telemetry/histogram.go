package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// The serving layer's latency histograms use one fixed log2-spaced
// bucket layout: bucket i covers durations up to 2^(minBucketShift+i)
// nanoseconds, so the NumBuckets buckets span ~1 µs (a limiter check)
// to ~8.6 s (a peer forward against a slow replica), with everything
// beyond falling into the implicit +Inf bucket. Log2 spacing makes
// Observe a shift-and-count-bits index computation — no search, no
// float math — which is what keeps it allocation-free and cheap enough
// for the per-batch hot path.
const (
	// NumBuckets is the number of finite histogram buckets.
	NumBuckets = 24
	// minBucketShift sets the first bucket's upper bound: 2^10 ns = 1.024 µs.
	minBucketShift = 10
)

// bucketBounds holds the finite buckets' upper bounds in seconds,
// computed once at init. Exposed through BucketBounds.
var bucketBounds = func() [NumBuckets]float64 {
	var b [NumBuckets]float64
	for i := range b {
		b[i] = float64(uint64(1)<<(minBucketShift+i)) / 1e9
	}
	return b
}()

// BucketBounds returns the histograms' finite upper bucket bounds in
// seconds, ascending. Every Histogram shares this layout.
func BucketBounds() []float64 {
	b := bucketBounds
	return b[:]
}

// Histogram is a fixed-bucket latency histogram safe for concurrent use:
// every bin is an independent atomic counter, so Observe is two atomic
// adds plus an atomic add into the sum — no locks, no allocation. The
// zero value is ready to use. A Histogram must not be copied after
// first use.
type Histogram struct {
	// bins[NumBuckets] is the overflow (+Inf-only) bin.
	bins  [NumBuckets + 1]atomic.Uint64
	count atomic.Uint64
	sum   atomic.Uint64 // nanoseconds
}

// Observe records one duration. Negative durations count as zero.
func (h *Histogram) Observe(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	idx := 0
	if ns > 1<<minBucketShift {
		idx = bits.Len64((ns - 1) >> minBucketShift)
	}
	if idx > NumBuckets {
		idx = NumBuckets
	}
	h.bins[idx].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Snapshot returns a point-in-time copy of the histogram. Like the
// counter snapshots, each field is read atomically but the set of reads
// is not one global atomic cut — the usual monitoring contract.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.bins {
		s.Bins[i] = h.bins[i].Load()
	}
	s.Count = h.count.Load()
	s.SumSeconds = float64(h.sum.Load()) / 1e9
	return s
}

// HistogramSnapshot is a point-in-time copy of one Histogram: per-bin
// (non-cumulative) counts — Bins[NumBuckets] is the overflow bin beyond
// the last finite bound — plus the total observation count and the sum
// of all observed durations in seconds. The Prometheus encoder derives
// the cumulative `le` series from it.
type HistogramSnapshot struct {
	Bins       [NumBuckets + 1]uint64 `json:"bins"`
	Count      uint64                 `json:"count"`
	SumSeconds float64                `json:"sum_seconds"`
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the recorded
// durations in seconds, interpolating linearly inside the containing
// log2 bucket — the same estimate Prometheus' histogram_quantile()
// would produce from the exported cumulative series. Observations in
// the overflow bin clamp to the last finite bound; an empty snapshot
// returns 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := uint64(0)
	for i, n := range s.Bins {
		if n == 0 {
			continue
		}
		cum += n
		if float64(cum) < rank {
			continue
		}
		if i >= NumBuckets {
			return bucketBounds[NumBuckets-1]
		}
		lower := 0.0
		if i > 0 {
			lower = bucketBounds[i-1]
		}
		upper := bucketBounds[i]
		// Position of the rank inside this bucket's n observations.
		into := rank - float64(cum-n)
		if into < 0 {
			into = 0
		}
		return lower + (upper-lower)*into/float64(n)
	}
	return bucketBounds[NumBuckets-1]
}

// Route classifies a gateway request for latency accounting: one class
// per serving route of the HTTP surface.
type Route uint8

// The gateway's route classes.
const (
	RouteOpen Route = iota
	RoutePush
	RouteGet
	RouteClassify
	RouteMigrate
	RouteClose
	RouteModel
	RouteRollout
	RouteState
	// NumRoutes bounds the Route enum; not a route itself.
	NumRoutes
)

var routeNames = [NumRoutes]string{
	"open", "push", "get", "classify", "migrate", "close", "model", "rollout",
	"state",
}

// String returns the route's label value as exposed on /metrics.
func (r Route) String() string {
	if int(r) < len(routeNames) {
		return routeNames[r]
	}
	return "unknown"
}

// Stage names one timed stage of the serving pipeline, cutting across
// routes: where a Route histogram says how slow a request was, a Stage
// histogram says where the time went.
type Stage uint8

// The serving pipeline's timed stages.
const (
	// StageAuth is the bearer-token check.
	StageAuth Stage = iota
	// StageRateLimit is the token-bucket admission check.
	StageRateLimit
	// StageRoute is the consistent-hash ring ownership decision.
	StageRoute
	// StageForward is one full proxy hop to the owning peer replica.
	StageForward
	// StageExtract is feature extraction over one classification window.
	StageExtract
	// StageClassify is the neural-network forward pass.
	StageClassify
	// StageDecode is one ADSP frame-payload decode on the streaming
	// ingress (the binary counterpart of JSON body decoding).
	StageDecode
	// StageAdmit is a streamed push's wait in the admission batcher's
	// queue before a worker ran it.
	StageAdmit
	// NumStages bounds the Stage enum; not a stage itself.
	NumStages
)

var stageNames = [NumStages]string{
	"auth", "rate_limit", "route", "forward", "extract", "classify",
	"decode", "admit",
}

// String returns the stage's label value as exposed on /metrics.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// Latencies is the serving layer's full latency instrument set: one
// histogram per route class and one per pipeline stage. The zero value
// is ready to use; Latencies must not be copied after first use.
type Latencies struct {
	routes [NumRoutes]Histogram
	stages [NumStages]Histogram
}

// ObserveRoute records one completed request of the given route class.
func (l *Latencies) ObserveRoute(r Route, d time.Duration) {
	if r < NumRoutes {
		l.routes[r].Observe(d)
	}
}

// ObserveStage records one completed pipeline stage.
func (l *Latencies) ObserveStage(s Stage, d time.Duration) {
	if s < NumStages {
		l.stages[s].Observe(d)
	}
}

// LatencySnapshot is a point-in-time copy of every latency histogram,
// keyed by route and stage label. It is the non-counter half of a
// serving-stats snapshot: exporters encode it without touching the live
// instruments.
type LatencySnapshot struct {
	Routes map[string]HistogramSnapshot `json:"routes"`
	Stages map[string]HistogramSnapshot `json:"stages"`
}

// Snapshot copies every route and stage histogram. All series are
// present even before their first observation, so /metrics exposes the
// full layout from startup (the Prometheus convention: series appear at
// 0, not on first use).
func (l *Latencies) Snapshot() LatencySnapshot {
	s := LatencySnapshot{
		Routes: make(map[string]HistogramSnapshot, NumRoutes),
		Stages: make(map[string]HistogramSnapshot, NumStages),
	}
	for r := Route(0); r < NumRoutes; r++ {
		s.Routes[r.String()] = l.routes[r].Snapshot()
	}
	for st := Stage(0); st < NumStages; st++ {
		s.Stages[st.String()] = l.stages[st].Snapshot()
	}
	return s
}
