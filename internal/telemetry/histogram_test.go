package telemetry

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestHistogramBucketPlacement(t *testing.T) {
	var h Histogram
	cases := []struct {
		d    time.Duration
		want int // bin index
	}{
		{0, 0},
		{-5 * time.Second, 0}, // negative clamps to zero
		{1, 0},
		{1024 * time.Nanosecond, 0},   // exactly the first bound
		{1025 * time.Nanosecond, 1},   // one past it
		{2048 * time.Nanosecond, 1},   // exactly the second bound
		{time.Millisecond, 10},        // 1e6 ns ≤ 2^20 ns = 1.048 ms
		{time.Second, 20},             // 1e9 ns ≤ 2^30 ns = 1.074 s
		{8 * time.Second, 23},         // ≤ 2^33 ns = 8.59 s, last finite bucket
		{9 * time.Second, NumBuckets}, // overflow bin
		{time.Hour, NumBuckets},
	}
	for i, c := range cases {
		before := h.Snapshot()
		h.Observe(c.d)
		after := h.Snapshot()
		if got := after.Bins[c.want] - before.Bins[c.want]; got != 1 {
			t.Errorf("case %d: Observe(%v) did not land in bin %d (snapshot %v)", i, c.d, c.want, after.Bins)
		}
	}
	s := h.Snapshot()
	if s.Count != uint64(len(cases)) {
		t.Errorf("count = %d, want %d", s.Count, len(cases))
	}
}

func TestHistogramSumAndCount(t *testing.T) {
	var h Histogram
	h.Observe(250 * time.Millisecond)
	h.Observe(750 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 2 {
		t.Fatalf("count = %d, want 2", s.Count)
	}
	if s.SumSeconds < 0.999 || s.SumSeconds > 1.001 {
		t.Fatalf("sum = %v s, want ~1.0", s.SumSeconds)
	}
}

func TestBucketBoundsLayout(t *testing.T) {
	b := BucketBounds()
	if len(b) != NumBuckets {
		t.Fatalf("got %d bounds, want %d", len(b), NumBuckets)
	}
	for i := 1; i < len(b); i++ {
		if b[i] != 2*b[i-1] {
			t.Fatalf("bounds not log2-spaced at %d: %v then %v", i, b[i-1], b[i])
		}
	}
	if b[0] != 1024e-9 {
		t.Fatalf("first bound = %v, want 1.024e-06", b[0])
	}
}

func TestLatenciesSnapshotCoversAllSeries(t *testing.T) {
	var l Latencies
	l.ObserveRoute(RoutePush, time.Millisecond)
	l.ObserveStage(StageClassify, time.Microsecond)
	s := l.Snapshot()
	if len(s.Routes) != int(NumRoutes) {
		t.Fatalf("snapshot has %d routes, want %d", len(s.Routes), NumRoutes)
	}
	if len(s.Stages) != int(NumStages) {
		t.Fatalf("snapshot has %d stages, want %d", len(s.Stages), NumStages)
	}
	if s.Routes["push"].Count != 1 {
		t.Errorf("push route count = %d, want 1", s.Routes["push"].Count)
	}
	if s.Stages["classify"].Count != 1 {
		t.Errorf("classify stage count = %d, want 1", s.Stages["classify"].Count)
	}
	// Untouched series are still present, at zero.
	if got, ok := s.Routes["migrate"]; !ok || got.Count != 0 {
		t.Errorf("migrate route missing or non-zero: %v %v", ok, got.Count)
	}
}

// validateHistogramText checks one encoded histogram family against the
// exposition-format grammar: HELP/TYPE preamble, per-series cumulative
// non-decreasing buckets ending in a +Inf bucket equal to _count, and a
// _sum/_count pair per series.
func validateHistogramText(t *testing.T, text, name string) {
	t.Helper()
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("histogram %q: too few lines:\n%s", name, text)
	}
	if want := "# HELP " + name + " "; !strings.HasPrefix(lines[0], want) {
		t.Fatalf("line 1 = %q, want prefix %q", lines[0], want)
	}
	if want := "# TYPE " + name + " histogram"; lines[1] != want {
		t.Fatalf("line 2 = %q, want %q", lines[1], want)
	}
	bucketRe := regexp.MustCompile(`^` + regexp.QuoteMeta(name) + `_bucket\{([a-zA-Z_][a-zA-Z0-9_]*="[^"]*",)?le="([^"]+)"\} (\d+)$`)
	sumRe := regexp.MustCompile(`^` + regexp.QuoteMeta(name) + `_sum(\{[^}]*\})? ([0-9.eE+-]+|NaN)$`)
	countRe := regexp.MustCompile(`^` + regexp.QuoteMeta(name) + `_count(\{[^}]*\})? (\d+)$`)

	var (
		prevCum  uint64
		prevLe   float64
		sawInf   bool
		infCount uint64
		series   int
	)
	resetSeries := func() { prevCum = 0; prevLe = -1; sawInf = false }
	resetSeries()
	for _, line := range lines[2:] {
		switch {
		case bucketRe.MatchString(line):
			m := bucketRe.FindStringSubmatch(line)
			cum, err := strconv.ParseUint(m[3], 10, 64)
			if err != nil {
				t.Fatalf("bad bucket value in %q: %v", line, err)
			}
			if cum < prevCum {
				t.Fatalf("bucket not cumulative: %q after cum=%d", line, prevCum)
			}
			if m[2] == "+Inf" {
				sawInf, infCount = true, cum
			} else {
				le, err := strconv.ParseFloat(m[2], 64)
				if err != nil {
					t.Fatalf("bad le in %q: %v", line, err)
				}
				if sawInf {
					t.Fatalf("finite bucket after +Inf: %q", line)
				}
				if le <= prevLe {
					t.Fatalf("le bounds not ascending: %v after %v", le, prevLe)
				}
				prevLe = le
			}
			prevCum = cum
		case sumRe.MatchString(line):
			if !sawInf {
				t.Fatalf("_sum before +Inf bucket: %q", line)
			}
		case countRe.MatchString(line):
			m := countRe.FindStringSubmatch(line)
			count, _ := strconv.ParseUint(m[2], 10, 64)
			if count != infCount {
				t.Fatalf("_count %d != +Inf bucket %d", count, infCount)
			}
			series++
			resetSeries()
		default:
			t.Fatalf("line matches no histogram sample shape: %q", line)
		}
	}
	if series == 0 {
		t.Fatalf("no complete series (bucket.. +Inf, _sum, _count) found in:\n%s", text)
	}
}

func TestEncoderHistogramGrammar(t *testing.T) {
	var h Histogram
	h.Observe(5 * time.Microsecond)
	h.Observe(3 * time.Millisecond)
	h.Observe(2 * time.Second)
	h.Observe(time.Hour) // overflow → +Inf only
	var empty Histogram

	var b strings.Builder
	e := NewEncoder(&b)
	e.Histogram("adasense_request_duration_seconds", "Request latency by route.", "route",
		[]HistogramSeries{
			{LabelValue: "push", H: h.Snapshot()},
			{LabelValue: "open", H: empty.Snapshot()},
		})
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	validateHistogramText(t, text, "adasense_request_duration_seconds")

	// The +Inf bucket carries the overflow observation.
	if !strings.Contains(text, `route="push",le="+Inf"} 4`) {
		t.Errorf("+Inf bucket should count all 4 observations:\n%s", text)
	}
	// An untouched series still emits its full layout at zero.
	if !strings.Contains(text, `route="open",le="+Inf"} 0`) {
		t.Errorf("empty series missing zero +Inf bucket:\n%s", text)
	}
	wantBuckets := (NumBuckets + 1) * 2 // finite + +Inf, two series
	if got := strings.Count(text, "_bucket{"); got != wantBuckets {
		t.Errorf("got %d bucket lines, want %d", got, wantBuckets)
	}
	// One HELP/TYPE pair for the whole family.
	if got := strings.Count(text, "# TYPE"); got != 1 {
		t.Errorf("got %d TYPE lines, want 1", got)
	}
}

func TestEncoderGaugeWithLabels(t *testing.T) {
	var b strings.Builder
	e := NewEncoder(&b)
	e.GaugeWith("adasense_build_info", "Build metadata.", []Label{
		{Name: "version", Value: `v1.2.3"quoted\back` + "\nline"},
		{Name: "goversion", Value: "go1.23"},
	}, 1)
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `adasense_build_info{version="v1.2.3\"quoted\\back\nline",goversion="go1.23"} 1` + "\n"
	if !strings.HasSuffix(got, want) {
		t.Fatalf("sample line mismatch:\ngot  %q\nwant suffix %q", got, want)
	}
	if !strings.Contains(got, "# TYPE adasense_build_info gauge") {
		t.Fatalf("missing TYPE line:\n%s", got)
	}
}

func BenchmarkTelemetryHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	if h.Snapshot().Count != uint64(b.N) {
		b.Fatal("lost observations")
	}
}

func BenchmarkTelemetryLatenciesObserveRoute(b *testing.B) {
	var l Latencies
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.ObserveRoute(RoutePush, time.Duration(i))
	}
}

func ExampleEncoder_Histogram() {
	var h Histogram
	h.Observe(2 * time.Microsecond)
	var b strings.Builder
	e := NewEncoder(&b)
	e.Histogram("demo_seconds", "Demo.", "route", []HistogramSeries{{LabelValue: "push", H: h.Snapshot()}})
	for _, line := range strings.Split(b.String(), "\n")[:4] {
		fmt.Println(line)
	}
	// Output:
	// # HELP demo_seconds Demo.
	// # TYPE demo_seconds histogram
	// demo_seconds_bucket{route="push",le="1.024e-06"} 0
	// demo_seconds_bucket{route="push",le="2.048e-06"} 1
}

func TestHistogramSnapshotQuantile(t *testing.T) {
	var h Histogram
	// 100 observations spread uniformly inside one known bucket: bucket
	// for 3 µs spans (2.048 µs, 4.096 µs].
	for i := 0; i < 100; i++ {
		h.Observe(3 * time.Microsecond)
	}
	s := h.Snapshot()
	lo, hi := 2048e-9, 4096e-9
	for _, q := range []float64{0.01, 0.5, 0.95, 0.99, 1} {
		got := s.Quantile(q)
		if got < lo || got > hi {
			t.Fatalf("Quantile(%v) = %v, want within (%v, %v]", q, got, lo, hi)
		}
	}
	if p1, p99 := s.Quantile(0.01), s.Quantile(0.99); p1 >= p99 {
		t.Fatalf("quantiles not monotone within bucket: p1=%v p99=%v", p1, p99)
	}
}

func TestHistogramSnapshotQuantileAcrossBuckets(t *testing.T) {
	var h Histogram
	// 90 fast observations and 10 slow ones: p50 must land in the fast
	// bucket, p99 in the slow one.
	for i := 0; i < 90; i++ {
		h.Observe(2 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(5 * time.Millisecond)
	}
	s := h.Snapshot()
	if p50 := s.Quantile(0.5); p50 > 10e-6 {
		t.Fatalf("p50 = %v, want in the microsecond range", p50)
	}
	if p99 := s.Quantile(0.99); p99 < 1e-3 {
		t.Fatalf("p99 = %v, want in the millisecond range", p99)
	}
	if s.Quantile(0.5) > s.Quantile(0.95) || s.Quantile(0.95) > s.Quantile(0.99) {
		t.Fatal("quantiles not monotone")
	}
}

func TestHistogramSnapshotQuantileEdges(t *testing.T) {
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty snapshot Quantile = %v, want 0", got)
	}
	var h Histogram
	h.Observe(time.Hour) // far beyond the last finite bound
	s := h.Snapshot()
	last := BucketBounds()[NumBuckets-1]
	if got := s.Quantile(0.99); got != last {
		t.Fatalf("overflow Quantile = %v, want clamp to last bound %v", got, last)
	}
}
