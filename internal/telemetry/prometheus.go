package telemetry

import (
	"io"
	"math"
	"strconv"
	"strings"
)

// Encoder writes metrics in the Prometheus text exposition format
// (version 0.0.4): for each series a # HELP line, a # TYPE line and the
// sample itself. It is a deliberately small hand-rolled encoder — the
// serving stack exports a fixed set of label-free counters and gauges,
// which is the one corner of the format it implements.
//
// The first write error sticks: subsequent calls are no-ops and Err
// returns it, so callers emit the whole exposition and check once.
type Encoder struct {
	w   io.Writer
	err error
}

// ContentType is the value /metrics responses declare, per the
// Prometheus exposition format spec.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// NewEncoder returns an encoder writing to w.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{w: w} }

// Counter emits one monotonically increasing series. By Prometheus
// convention counter names end in _total.
func (e *Encoder) Counter(name, help string, v uint64) {
	e.series(name, help, "counter", strconv.FormatUint(v, 10))
}

// Gauge emits one point-in-time series.
func (e *Encoder) Gauge(name, help string, v float64) {
	var s string
	switch {
	case math.IsNaN(v):
		s = "NaN"
	case math.IsInf(v, +1):
		s = "+Inf"
	case math.IsInf(v, -1):
		s = "-Inf"
	default:
		s = strconv.FormatFloat(v, 'g', -1, 64)
	}
	e.series(name, help, "gauge", s)
}

// Err returns the first write error, or nil.
func (e *Encoder) Err() error { return e.err }

// helpEscaper escapes HELP text per the exposition format: backslash and
// newline only (double quotes are escaped only inside label values,
// which this encoder does not emit).
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func (e *Encoder) series(name, help, typ, value string) {
	if e.err != nil {
		return
	}
	var b strings.Builder
	b.Grow(3*len(name) + len(help) + len(typ) + len(value) + 32)
	b.WriteString("# HELP ")
	b.WriteString(name)
	b.WriteByte(' ')
	helpEscaper.WriteString(&b, help)
	b.WriteString("\n# TYPE ")
	b.WriteString(name)
	b.WriteByte(' ')
	b.WriteString(typ)
	b.WriteByte('\n')
	b.WriteString(name)
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
	_, e.err = io.WriteString(e.w, b.String())
}
