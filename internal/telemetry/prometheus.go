package telemetry

import (
	"io"
	"math"
	"strconv"
	"strings"
)

// Encoder writes metrics in the Prometheus text exposition format
// (version 0.0.4): for each series a # HELP line, a # TYPE line and the
// samples themselves. It is a deliberately small hand-rolled encoder —
// the serving stack exports a fixed set of counters, gauges and
// fixed-bucket histograms (labels limited to a single static pair plus
// the histogram `le`), which is the corner of the format it implements.
//
// The first write error sticks: subsequent calls are no-ops and Err
// returns it, so callers emit the whole exposition and check once.
type Encoder struct {
	w   io.Writer
	err error
}

// ContentType is the value /metrics responses declare, per the
// Prometheus exposition format spec.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// NewEncoder returns an encoder writing to w.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{w: w} }

// Counter emits one monotonically increasing series. By Prometheus
// convention counter names end in _total.
func (e *Encoder) Counter(name, help string, v uint64) {
	e.series(name, help, "counter", strconv.FormatUint(v, 10))
}

// Gauge emits one point-in-time series.
func (e *Encoder) Gauge(name, help string, v float64) {
	e.series(name, help, "gauge", formatFloat(v))
}

// Label is one metric label pair. Values are escaped per the
// exposition format (backslash, double quote, newline).
type Label struct {
	Name  string
	Value string
}

// GaugeWith emits one gauge sample carrying the given labels — used for
// info-style series such as adasense_build_info, whose value is
// constant 1 and whose payload lives in the labels.
func (e *Encoder) GaugeWith(name, help string, labels []Label, v float64) {
	if e.err != nil {
		return
	}
	var b strings.Builder
	e.header(&b, name, help, "gauge")
	b.WriteString(name)
	writeLabels(&b, labels)
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
	_, e.err = io.WriteString(e.w, b.String())
}

// CounterSample couples one label value with its counter reading —
// one (type="batch", value) sample of a counter vec.
type CounterSample struct {
	// LabelValue is the value of the vec's label for this sample.
	LabelValue string
	V          uint64
}

// CounterVec emits one counter metric family whose samples fan out
// over a single label — the shape of the per-frame-type stream
// counters. HELP and TYPE are emitted once for the family.
func (e *Encoder) CounterVec(name, help, labelName string, samples []CounterSample) {
	if e.err != nil {
		return
	}
	var b strings.Builder
	e.header(&b, name, help, "counter")
	for _, s := range samples {
		writeSample(&b, name, []Label{{Name: labelName, Value: s.LabelValue}},
			strconv.FormatUint(s.V, 10))
	}
	_, e.err = io.WriteString(e.w, b.String())
}

// HistogramSeries couples one label value with the distribution
// observed under it — one (route="push", snapshot) pair of a
// histogram vec.
type HistogramSeries struct {
	// LabelValue is the value of the vec's label for this series.
	LabelValue string
	H          HistogramSnapshot
}

// Histogram emits one histogram metric family: for each series the
// cumulative `le` buckets over the fixed BucketBounds layout, the
// mandatory +Inf bucket, and the _sum and _count samples, each carrying
// labelName=LabelValue. HELP and TYPE are emitted once for the family.
func (e *Encoder) Histogram(name, help, labelName string, series []HistogramSeries) {
	if e.err != nil {
		return
	}
	var b strings.Builder
	e.header(&b, name, help, "histogram")
	for _, s := range series {
		labels := []Label{{Name: labelName, Value: s.LabelValue}}
		cum := uint64(0)
		for i, bound := range bucketBounds {
			cum += s.H.Bins[i]
			writeSample(&b, name+"_bucket", append(labels, Label{Name: "le", Value: formatFloat(bound)}), strconv.FormatUint(cum, 10))
		}
		// The +Inf bucket must equal _count; emit the snapshot's count so
		// the invariant holds even if an Observe landed between bin reads.
		writeSample(&b, name+"_bucket", append(labels, Label{Name: "le", Value: "+Inf"}), strconv.FormatUint(s.H.Count, 10))
		writeSample(&b, name+"_sum", labels, formatFloat(s.H.SumSeconds))
		writeSample(&b, name+"_count", labels, strconv.FormatUint(s.H.Count, 10))
	}
	_, e.err = io.WriteString(e.w, b.String())
}

// Err returns the first write error, or nil.
func (e *Encoder) Err() error { return e.err }

// formatFloat renders a float64 sample value, honoring the format's
// spellings for the IEEE specials.
func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelEscaper escapes label values: backslash, double quote and
// newline, per the exposition format.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// writeLabels renders {k="v",...}; no braces for an empty set.
func writeLabels(b *strings.Builder, labels []Label) {
	if len(labels) == 0 {
		return
	}
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		labelEscaper.WriteString(b, l.Value)
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// writeSample renders one sample line.
func writeSample(b *strings.Builder, name string, labels []Label, value string) {
	b.WriteString(name)
	writeLabels(b, labels)
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

// helpEscaper escapes HELP text per the exposition format: backslash and
// newline only (double quotes are escaped only inside label values,
// which this encoder does not emit).
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// header renders the # HELP and # TYPE preamble of one metric family.
func (e *Encoder) header(b *strings.Builder, name, help, typ string) {
	b.Grow(2*len(name) + len(help) + len(typ) + 32)
	b.WriteString("# HELP ")
	b.WriteString(name)
	b.WriteByte(' ')
	helpEscaper.WriteString(b, help)
	b.WriteString("\n# TYPE ")
	b.WriteString(name)
	b.WriteByte(' ')
	b.WriteString(typ)
	b.WriteByte('\n')
}

func (e *Encoder) series(name, help, typ, value string) {
	if e.err != nil {
		return
	}
	var b strings.Builder
	e.header(&b, name, help, typ)
	b.WriteString(name)
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
	_, e.err = io.WriteString(e.w, b.String())
}
