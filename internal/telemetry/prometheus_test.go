package telemetry

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestEncoderFormat(t *testing.T) {
	var b strings.Builder
	e := NewEncoder(&b)
	e.Counter("adasense_batches_pushed_total", "Batches accepted by sessions.", 42)
	e.Gauge("adasense_sessions_live", "Currently open sessions.", 3)
	e.Gauge("adasense_pool_hit_rate", "Pipeline pool hit rate.", 0.25)
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	want := "# HELP adasense_batches_pushed_total Batches accepted by sessions.\n" +
		"# TYPE adasense_batches_pushed_total counter\n" +
		"adasense_batches_pushed_total 42\n" +
		"# HELP adasense_sessions_live Currently open sessions.\n" +
		"# TYPE adasense_sessions_live gauge\n" +
		"adasense_sessions_live 3\n" +
		"# HELP adasense_pool_hit_rate Pipeline pool hit rate.\n" +
		"# TYPE adasense_pool_hit_rate gauge\n" +
		"adasense_pool_hit_rate 0.25\n"
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestEncoderEscapesHelp(t *testing.T) {
	var b strings.Builder
	e := NewEncoder(&b)
	e.Counter("x_total", "line one\nback\\slash", 1)
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	if want := `# HELP x_total line one\nback\\slash` + "\n"; !strings.HasPrefix(b.String(), want) {
		t.Fatalf("HELP escaping wrong: %q", b.String())
	}
	if strings.Count(b.String(), "\n") != 3 {
		t.Fatalf("escaped newline leaked into output: %q", b.String())
	}
}

func TestEncoderNonFiniteGauges(t *testing.T) {
	var b strings.Builder
	e := NewEncoder(&b)
	e.Gauge("nan", "", math.NaN())
	e.Gauge("pinf", "", math.Inf(1))
	e.Gauge("ninf", "", math.Inf(-1))
	out := b.String()
	for _, want := range []string{"nan NaN\n", "pinf +Inf\n", "ninf -Inf\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in %q", want, out)
		}
	}
}

// failWriter fails every write after the first n bytes requested.
type failWriter struct{ budget int }

var errSink = errors.New("sink failed")

func (f *failWriter) Write(p []byte) (int, error) {
	if f.budget <= 0 {
		return 0, errSink
	}
	f.budget -= len(p)
	return len(p), nil
}

func TestEncoderStickyError(t *testing.T) {
	e := NewEncoder(&failWriter{budget: 0})
	e.Counter("a_total", "", 1)
	if e.Err() == nil {
		t.Fatal("write failure not surfaced")
	}
	e.Gauge("b", "", 2) // must be a no-op, not a panic or an overwrite
	if !errors.Is(e.Err(), errSink) {
		t.Fatalf("Err = %v, want first write error", e.Err())
	}
}
