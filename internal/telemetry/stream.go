package telemetry

import "sync/atomic"

// NumFrameTypes sizes the per-frame-type counter arrays, indexed by
// the raw ADSP frame type byte (internal/stream's FrameType constants,
// currently 0x01..0x0A — 16 leaves headroom for protocol growth
// without a telemetry change). The arrays are indexed by wire byte
// rather than a translated enum so the stream layer records frames
// with one bounds check and no mapping table; internal/stream's tests
// assert every frame type fits.
const NumFrameTypes = 16

// StreamCounters is the streaming ingress's counter set, the ADSP
// sibling of Counters: connection lifecycle, frames by type and
// direction, ring redirects, and the admission batcher's coalescing
// behavior. The zero value is ready to use; StreamCounters must not be
// copied after first use. Owned by whichever layer runs the stream
// listeners (the gateway command), and exported on /metrics as the
// adasense_stream_* series.
type StreamCounters struct {
	connsOpened atomic.Uint64
	connsClosed atomic.Uint64
	framesIn    [NumFrameTypes]atomic.Uint64
	framesOut   [NumFrameTypes]atomic.Uint64
	redirects   atomic.Uint64

	batcherFlushes   atomic.Uint64
	batcherCoalesced atomic.Uint64
}

// ConnOpened records one accepted stream connection (any transport).
func (c *StreamCounters) ConnOpened() { c.connsOpened.Add(1) }

// ConnClosed records one stream connection ending, however it ended.
func (c *StreamCounters) ConnClosed() { c.connsClosed.Add(1) }

// FrameIn records one decoded inbound frame of the given raw type.
func (c *StreamCounters) FrameIn(typ uint8) {
	if typ < NumFrameTypes {
		c.framesIn[typ].Add(1)
	}
}

// FrameOut records one written outbound frame of the given raw type.
func (c *StreamCounters) FrameOut(typ uint8) {
	if typ < NumFrameTypes {
		c.framesOut[typ].Add(1)
	}
}

// RedirectSent records one device redirected to its ring owner.
func (c *StreamCounters) RedirectSent() { c.redirects.Add(1) }

// BatcherFlush records one admission-batcher run that executed n
// coalesced tasks back to back.
func (c *StreamCounters) BatcherFlush(n int) {
	c.batcherFlushes.Add(1)
	if n > 1 {
		c.batcherCoalesced.Add(uint64(n - 1))
	}
}

// StreamSnapshot is a point-in-time copy of the stream counter set.
// FramesIn/FramesOut are indexed by raw frame type byte; index 0 is
// unused (no ADSP frame type is zero).
type StreamSnapshot struct {
	ConnsOpened uint64 `json:"conns_opened"`
	ConnsClosed uint64 `json:"conns_closed"`
	// ConnsLive is the derived gauge: opened minus closed.
	ConnsLive uint64 `json:"conns_live"`

	FramesIn  [NumFrameTypes]uint64 `json:"frames_in"`
	FramesOut [NumFrameTypes]uint64 `json:"frames_out"`
	Redirects uint64                `json:"redirects"`

	BatcherFlushes   uint64 `json:"batcher_flushes"`
	BatcherCoalesced uint64 `json:"batcher_coalesced"`
}

// Snapshot returns a copy of the current counter values, with the same
// per-field atomicity contract as Counters.Snapshot.
func (c *StreamCounters) Snapshot() StreamSnapshot {
	// Closed is read before opened so a connection landing between the
	// two loads cannot make the derived live gauge go negative.
	closed := c.connsClosed.Load()
	s := StreamSnapshot{
		ConnsOpened:      c.connsOpened.Load(),
		ConnsClosed:      closed,
		Redirects:        c.redirects.Load(),
		BatcherFlushes:   c.batcherFlushes.Load(),
		BatcherCoalesced: c.batcherCoalesced.Load(),
	}
	if s.ConnsOpened >= s.ConnsClosed {
		s.ConnsLive = s.ConnsOpened - s.ConnsClosed
	}
	for i := range s.FramesIn {
		s.FramesIn[i] = c.framesIn[i].Load()
		s.FramesOut[i] = c.framesOut[i].Load()
	}
	return s
}
