// Package telemetry provides the serving layer's observability
// primitives: a fixed set of allocation-free atomic counters covering the
// gateway's session lifecycle (opened/evicted/closed), the data path
// (batches pushed, events emitted, one-shot classifications), the
// pipeline pool (hits/misses), model hot-swaps and federation traffic
// (forwarded requests, replicated swaps, peer errors).
//
// Counters is safe for concurrent use from any number of goroutines; the
// increment methods compile to a single atomic add with no allocation, so
// they are cheap enough for the per-batch hot path. Snapshot copies a
// consistent-enough point-in-time view for /metrics endpoints: each field
// is read atomically, but the set of fields is not one global atomic
// snapshot (counters may advance between field reads), which is the usual
// and acceptable contract for monitoring counters.
package telemetry

import "sync/atomic"

// Counters is the serving layer's counter set. The zero value is ready to
// use. Counters must not be copied after first use.
type Counters struct {
	sessionsOpened    atomic.Uint64
	sessionsClosed    atomic.Uint64
	sessionsEvicted   atomic.Uint64
	batchesPushed     atomic.Uint64
	eventsEmitted     atomic.Uint64
	classifyCalls     atomic.Uint64
	poolHits          atomic.Uint64
	poolMisses        atomic.Uint64
	modelSwaps        atomic.Uint64
	rateLimitedDevice atomic.Uint64
	rateLimitedGlobal atomic.Uint64
	authRejects       atomic.Uint64
	requestsForwarded atomic.Uint64
	swapsReplicated   atomic.Uint64
	peerErrors        atomic.Uint64
	rebalances        atomic.Uint64
	sessionsHandedOff atomic.Uint64
	staleRoutes       atomic.Uint64
	handoffsStateful  atomic.Uint64
	handoffsCold      atomic.Uint64

	rolloutCanaryClassifies atomic.Uint64
	rolloutsPromoted        atomic.Uint64
	rolloutsRolledBack      atomic.Uint64
	modelCatchups           atomic.Uint64
}

// SessionOpened records one session mint.
func (c *Counters) SessionOpened() { c.sessionsOpened.Add(1) }

// SessionClosed records one caller-initiated session close.
func (c *Counters) SessionClosed() { c.sessionsClosed.Add(1) }

// SessionEvicted records one idle-TTL eviction.
func (c *Counters) SessionEvicted() { c.sessionsEvicted.Add(1) }

// BatchPushed records one batch accepted by a session, with the number of
// classification events it completed.
func (c *Counters) BatchPushed(events int) {
	c.batchesPushed.Add(1)
	if events > 0 {
		c.eventsEmitted.Add(uint64(events))
	}
}

// ClassifyCall records one stateless one-shot classification.
func (c *Counters) ClassifyCall() { c.classifyCalls.Add(1) }

// PoolHit records a pipeline checkout served from the pool.
func (c *Counters) PoolHit() { c.poolHits.Add(1) }

// PoolMiss records a pipeline checkout that had to build a fresh pipeline.
func (c *Counters) PoolMiss() { c.poolMisses.Add(1) }

// ModelSwap records one atomic model hot-swap.
func (c *Counters) ModelSwap() { c.modelSwaps.Add(1) }

// RateLimitedDevice records one request rejected at its device's
// token bucket.
func (c *Counters) RateLimitedDevice() { c.rateLimitedDevice.Add(1) }

// RateLimitedGlobal records one request rejected at the gateway-wide
// token bucket.
func (c *Counters) RateLimitedGlobal() { c.rateLimitedGlobal.Add(1) }

// AuthReject records one request presenting a missing or wrong
// bearer token.
func (c *Counters) AuthReject() { c.authRejects.Add(1) }

// RequestForwarded records one request forwarded to its owning peer
// replica.
func (c *Counters) RequestForwarded() { c.requestsForwarded.Add(1) }

// SwapReplicated records one model swap successfully replicated to a
// peer replica.
func (c *Counters) SwapReplicated() { c.swapsReplicated.Add(1) }

// PeerError records one failed call to a peer replica (a forward or a
// swap-replication attempt).
func (c *Counters) PeerError() { c.peerErrors.Add(1) }

// Rebalance records one applied membership change (a new hash ring
// generation swapped in).
func (c *Counters) Rebalance() { c.rebalances.Add(1) }

// SessionHandedOff records one session closed by its departing owner
// because a rebalance moved its device to another replica.
func (c *Counters) SessionHandedOff() { c.sessionsHandedOff.Add(1) }

// StaleRoute records one request that arrived via a peer's forward
// although the local ring disagrees about ownership — the sender routed
// on a different membership generation.
func (c *Counters) StaleRoute() { c.staleRoutes.Add(1) }

// HandoffStateful records one session restored on this replica from a
// peer's state snapshot — the device's adaptation trajectory survived
// the move.
func (c *Counters) HandoffStateful() { c.handoffsStateful.Add(1) }

// HandoffCold records one session re-opened cold on this replica for an
// owned device the replica had no live session for — the rebalance
// fallback (old owner gone, snapshot rejected) and post-eviction
// reconnects both land here.
func (c *Counters) HandoffCold() { c.handoffsCold.Add(1) }

// RolloutCanaryClassifies records n classification events served by the
// canary arm of an active rollout.
func (c *Counters) RolloutCanaryClassifies(n int) {
	if n > 0 {
		c.rolloutCanaryClassifies.Add(uint64(n))
	}
}

// RolloutPromoted records one rollout completing: the canary passed
// every stage's gates and became the incumbent.
func (c *Counters) RolloutPromoted() { c.rolloutsPromoted.Add(1) }

// RolloutRolledBack records one rollout ending in rollback (a health
// gate failed, or an operator aborted).
func (c *Counters) RolloutRolledBack() { c.rolloutsRolledBack.Add(1) }

// ModelCatchup records one model pulled and installed from a peer
// because a request revealed a newer fleet model generation.
func (c *Counters) ModelCatchup() { c.modelCatchups.Add(1) }

// Snapshot is a point-in-time copy of the counter set, plus the derived
// pool hit rate.
type Snapshot struct {
	SessionsOpened  uint64 `json:"sessions_opened"`
	SessionsClosed  uint64 `json:"sessions_closed"`
	SessionsEvicted uint64 `json:"sessions_evicted"`
	BatchesPushed   uint64 `json:"batches_pushed"`
	EventsEmitted   uint64 `json:"events_emitted"`
	ClassifyCalls   uint64 `json:"classify_calls"`
	PoolHits        uint64 `json:"pool_hits"`
	PoolMisses      uint64 `json:"pool_misses"`
	ModelSwaps      uint64 `json:"model_swaps"`

	RateLimitedDevice uint64 `json:"rate_limited_device"`
	RateLimitedGlobal uint64 `json:"rate_limited_global"`
	AuthRejects       uint64 `json:"auth_rejects"`

	// Federation counters: requests forwarded to the owning peer
	// replica, swaps successfully replicated to a peer, and failed peer
	// calls.
	RequestsForwarded uint64 `json:"requests_forwarded"`
	SwapsReplicated   uint64 `json:"swaps_replicated"`
	PeerErrors        uint64 `json:"peer_errors"`

	// Dynamic-membership counters: applied membership changes, sessions
	// handed off to a new owner by a rebalance, and forwards that
	// arrived on a stale ring generation.
	Rebalances        uint64 `json:"rebalances"`
	SessionsHandedOff uint64 `json:"sessions_handed_off"`
	StaleRoutes       uint64 `json:"stale_routes"`

	// Stateful-handoff counters, both receiver-side: sessions restored
	// from a peer's state snapshot, and sessions re-opened cold for an
	// owned device with no live session.
	HandoffsStateful uint64 `json:"handoffs_stateful"`
	HandoffsCold     uint64 `json:"handoffs_cold"`

	// Rollout counters: classification events served by a canary arm,
	// rollouts promoted to incumbent, rollouts ended in rollback, and
	// models pulled from a peer by generation catch-up.
	RolloutCanaryClassifies uint64 `json:"rollout_canary_classifies"`
	RolloutsPromoted        uint64 `json:"rollouts_promoted"`
	RolloutsRolledBack      uint64 `json:"rollouts_rolled_back"`
	ModelCatchups           uint64 `json:"model_catchups"`

	// PoolHitRate is PoolHits / (PoolHits + PoolMisses), or 0 before the
	// first checkout.
	PoolHitRate float64 `json:"pool_hit_rate"`
}

// Snapshot returns a copy of the current counter values.
func (c *Counters) Snapshot() Snapshot {
	s := Snapshot{
		SessionsOpened:  c.sessionsOpened.Load(),
		SessionsClosed:  c.sessionsClosed.Load(),
		SessionsEvicted: c.sessionsEvicted.Load(),
		BatchesPushed:   c.batchesPushed.Load(),
		EventsEmitted:   c.eventsEmitted.Load(),
		ClassifyCalls:   c.classifyCalls.Load(),
		PoolHits:        c.poolHits.Load(),
		PoolMisses:      c.poolMisses.Load(),
		ModelSwaps:      c.modelSwaps.Load(),

		RateLimitedDevice: c.rateLimitedDevice.Load(),
		RateLimitedGlobal: c.rateLimitedGlobal.Load(),
		AuthRejects:       c.authRejects.Load(),

		RequestsForwarded: c.requestsForwarded.Load(),
		SwapsReplicated:   c.swapsReplicated.Load(),
		PeerErrors:        c.peerErrors.Load(),

		Rebalances:        c.rebalances.Load(),
		SessionsHandedOff: c.sessionsHandedOff.Load(),
		StaleRoutes:       c.staleRoutes.Load(),
		HandoffsStateful:  c.handoffsStateful.Load(),
		HandoffsCold:      c.handoffsCold.Load(),

		RolloutCanaryClassifies: c.rolloutCanaryClassifies.Load(),
		RolloutsPromoted:        c.rolloutsPromoted.Load(),
		RolloutsRolledBack:      c.rolloutsRolledBack.Load(),
		ModelCatchups:           c.modelCatchups.Load(),
	}
	if total := s.PoolHits + s.PoolMisses; total > 0 {
		s.PoolHitRate = float64(s.PoolHits) / float64(total)
	}
	return s
}
