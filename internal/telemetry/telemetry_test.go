package telemetry

import (
	"sync"
	"testing"
)

func TestCountersZeroValue(t *testing.T) {
	var c Counters
	s := c.Snapshot()
	if s != (Snapshot{}) {
		t.Fatalf("zero counters snapshot = %+v, want all-zero", s)
	}
}

func TestCountersAccumulate(t *testing.T) {
	var c Counters
	c.SessionOpened()
	c.SessionOpened()
	c.SessionClosed()
	c.SessionEvicted()
	c.BatchPushed(3)
	c.BatchPushed(0) // a batch too short to complete a tick
	c.ClassifyCall()
	c.PoolHit()
	c.PoolHit()
	c.PoolHit()
	c.PoolMiss()
	c.ModelSwap()
	c.RequestForwarded()
	c.RequestForwarded()
	c.SwapReplicated()
	c.PeerError()

	s := c.Snapshot()
	want := Snapshot{
		SessionsOpened:    2,
		SessionsClosed:    1,
		SessionsEvicted:   1,
		BatchesPushed:     2,
		EventsEmitted:     3,
		ClassifyCalls:     1,
		PoolHits:          3,
		PoolMisses:        1,
		ModelSwaps:        1,
		RequestsForwarded: 2,
		SwapsReplicated:   1,
		PeerErrors:        1,
		PoolHitRate:       0.75,
	}
	if s != want {
		t.Fatalf("snapshot = %+v, want %+v", s, want)
	}
}

// TestCountersConcurrent hammers every counter from many goroutines; under
// -race this is the package's safety proof, and the totals check that no
// increment is lost.
func TestCountersConcurrent(t *testing.T) {
	const goroutines, iters = 8, 1000
	var c Counters
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.SessionOpened()
				c.BatchPushed(2)
				c.PoolHit()
				c.PoolMiss()
				_ = c.Snapshot() // concurrent readers are allowed
			}
		}()
	}
	wg.Wait()

	s := c.Snapshot()
	const n = goroutines * iters
	if s.SessionsOpened != n || s.BatchesPushed != n || s.EventsEmitted != 2*n {
		t.Fatalf("lost increments: %+v", s)
	}
	if s.PoolHits != n || s.PoolMisses != n || s.PoolHitRate != 0.5 {
		t.Fatalf("pool accounting off: %+v", s)
	}
}

// BenchmarkCounterAdd measures the per-increment cost of the hot-path
// counters; it must report zero allocations.
func BenchmarkCounterAdd(b *testing.B) {
	var c Counters
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.BatchPushed(1)
		}
	})
}
