// Package trace records named time series produced by simulation runs and
// renders them as CSV (for external plotting) or quick ASCII plots (the
// terminal stand-in for the paper's figures).
package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one named time series with strictly ordered sample times.
type Series struct {
	Name string
	T    []float64
	V    []float64
}

// Add appends a sample. Times must be non-decreasing.
func (s *Series) Add(t, v float64) {
	if n := len(s.T); n > 0 && t < s.T[n-1] {
		panic(fmt.Sprintf("trace: non-monotonic time %v after %v in %q", t, s.T[n-1], s.Name))
	}
	s.T = append(s.T, t)
	s.V = append(s.V, v)
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.T) }

// Mean returns the arithmetic mean of the values (0 when empty).
func (s *Series) Mean() float64 {
	if len(s.V) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.V {
		sum += v
	}
	return sum / float64(len(s.V))
}

// TimeAverage returns the time-weighted average of a piecewise-constant
// series (each value holds until the next sample time; the last value gets
// the mean step as its holding time). Falls back to Mean for fewer than
// two samples.
func (s *Series) TimeAverage() float64 {
	n := len(s.T)
	if n < 2 {
		return s.Mean()
	}
	var weighted, total float64
	for i := 0; i < n-1; i++ {
		dt := s.T[i+1] - s.T[i]
		weighted += s.V[i] * dt
		total += dt
	}
	last := total / float64(n-1)
	weighted += s.V[n-1] * last
	total += last
	return weighted / total
}

// Recorder collects multiple named series.
type Recorder struct {
	series map[string]*Series
	order  []string
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{series: make(map[string]*Series)}
}

// Add appends a sample to the named series, creating it on first use.
func (r *Recorder) Add(name string, t, v float64) {
	s, ok := r.series[name]
	if !ok {
		s = &Series{Name: name}
		r.series[name] = s
		r.order = append(r.order, name)
	}
	s.Add(t, v)
}

// Series returns the named series, or nil if absent.
func (r *Recorder) Series(name string) *Series { return r.series[name] }

// Names returns the series names in creation order.
func (r *Recorder) Names() []string { return append([]string(nil), r.order...) }

// WriteCSV writes all series in long format: series,time,value.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "series,time,value\n"); err != nil {
		return err
	}
	for _, name := range r.order {
		s := r.series[name]
		for i := range s.T {
			if _, err := fmt.Fprintf(w, "%s,%g,%g\n", name, s.T[i], s.V[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// ASCIIPlot renders the series as a width×height character plot with a
// value axis, suitable for terminal output.
func ASCIIPlot(s *Series, width, height int) string {
	if s == nil || s.Len() == 0 || width < 8 || height < 2 {
		return "(empty series)\n"
	}
	lo, hi := s.V[0], s.V[0]
	for _, v := range s.V {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi == lo {
		hi = lo + 1
	}
	t0, t1 := s.T[0], s.T[s.Len()-1]
	if t1 == t0 {
		t1 = t0 + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	// Piecewise-constant render: for each column, take the sample value
	// in effect at the column's time.
	for col := 0; col < width; col++ {
		tc := t0 + (t1-t0)*float64(col)/float64(width-1)
		i := sort.SearchFloat64s(s.T, tc)
		if i >= s.Len() {
			i = s.Len() - 1
		} else if s.T[i] > tc && i > 0 {
			i--
		}
		frac := (s.V[i] - lo) / (hi - lo)
		row := height - 1 - int(frac*float64(height-1)+0.5)
		grid[row][col] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  [%g .. %g]\n", s.Name, lo, hi)
	for i, row := range grid {
		label := "      "
		if i == 0 {
			label = fmt.Sprintf("%6.4g", hi)
		} else if i == height-1 {
			label = fmt.Sprintf("%6.4g", lo)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, row)
	}
	fmt.Fprintf(&b, "       t: %g .. %g s\n", t0, t1)
	return b.String()
}
