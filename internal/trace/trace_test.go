package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestSeriesAddMonotonic(t *testing.T) {
	var s Series
	s.Add(0, 1)
	s.Add(1, 2)
	s.Add(1, 3) // equal times allowed
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-monotonic Add did not panic")
		}
	}()
	s.Add(0.5, 4)
}

func TestSeriesMean(t *testing.T) {
	var s Series
	if s.Mean() != 0 {
		t.Fatal("empty mean != 0")
	}
	s.Add(0, 2)
	s.Add(1, 4)
	if s.Mean() != 3 {
		t.Fatalf("Mean = %v", s.Mean())
	}
}

func TestTimeAverageWeightsDuration(t *testing.T) {
	var s Series
	// Value 10 held for 9 s, then value 0 held for ~the mean step.
	s.Add(0, 10)
	s.Add(9, 0)
	got := s.TimeAverage()
	// weighted: 10*9 + 0*9 over 18 s = 5.
	if math.Abs(got-5) > 1e-9 {
		t.Fatalf("TimeAverage = %v, want 5", got)
	}
}

func TestTimeAverageSingleSample(t *testing.T) {
	var s Series
	s.Add(0, 7)
	if s.TimeAverage() != 7 {
		t.Fatal("single-sample TimeAverage should equal the value")
	}
}

func TestRecorderSeriesLifecycle(t *testing.T) {
	r := NewRecorder()
	r.Add("current", 0, 180)
	r.Add("current", 1, 96)
	r.Add("state", 0, 0)
	if got := r.Series("current").Len(); got != 2 {
		t.Fatalf("current len = %d", got)
	}
	if r.Series("missing") != nil {
		t.Fatal("missing series should be nil")
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "current" || names[1] != "state" {
		t.Fatalf("Names = %v", names)
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRecorder()
	r.Add("a", 0, 1.5)
	r.Add("b", 2, -3)
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "series,time,value\na,0,1.5\nb,2,-3\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestASCIIPlotShape(t *testing.T) {
	var s Series
	s.Name = "demo"
	for i := 0; i < 50; i++ {
		s.Add(float64(i), float64(i%10))
	}
	out := ASCIIPlot(&s, 40, 8)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + 8 rows + time footer.
	if len(lines) != 10 {
		t.Fatalf("plot has %d lines, want 10:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "demo") {
		t.Fatalf("missing header: %q", lines[0])
	}
	if !strings.Contains(out, "*") {
		t.Fatal("plot has no points")
	}
}

func TestASCIIPlotDegenerate(t *testing.T) {
	if got := ASCIIPlot(nil, 40, 8); !strings.Contains(got, "empty") {
		t.Fatalf("nil series plot = %q", got)
	}
	var s Series
	s.Add(0, 5) // constant single sample
	if out := ASCIIPlot(&s, 10, 3); !strings.Contains(out, "*") {
		t.Fatalf("single-point plot missing point:\n%s", out)
	}
}
