package adasense

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"adasense/internal/features"
	"adasense/internal/nn"
)

// Model container format: the serialized System is a small versioned
// envelope around the network stream so that the feature layout travels
// with the weights.
//
// Layout: magic "ADSC" | uint32 version (1) | uint32 bin count |
// float64 spectral bin frequencies (Hz) | embedded network ("ADNN" ...).
//
// LoadSystem also accepts the legacy pre-container format — a raw
// network stream starting with the "ADNN" magic — and pairs it with the
// default feature layout, so models written by older adasense-train
// builds keep loading.
const (
	containerMagic   = "ADSC"
	containerVersion = 1

	// maxContainerBins bounds the feature-layout size a container may
	// declare; real layouts have a handful of spectral bins.
	maxContainerBins = 256
)

// Save serializes the system as a versioned model container carrying the
// feature layout and the float32 network weights.
func (s *System) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(containerMagic); err != nil {
		return err
	}
	bins := s.binFreqs
	if bins == nil {
		bins = features.DefaultBinFreqsHz()
	}
	for _, v := range []uint32{containerVersion, uint32(len(bins))} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, bins); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	_, err := s.Network.WriteTo(w)
	return err
}

// LoadSystem deserializes a system saved with Save. Both the current
// container format and the legacy raw-network format are accepted; the
// network's input size must match the (carried or default) feature
// layout.
func LoadSystem(r io.Reader) (*System, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(containerMagic))
	if err != nil {
		return nil, fmt.Errorf("adasense: reading model header: %w", err)
	}
	switch string(head) {
	case containerMagic:
		return loadContainer(br)
	case nn.Magic:
		// Legacy format: a bare network with the default feature layout.
		return loadNetwork(br, features.DefaultBinFreqsHz())
	default:
		return nil, fmt.Errorf("adasense: unrecognized model magic %q", head)
	}
}

// loadContainer reads the versioned envelope and the embedded network.
func loadContainer(br *bufio.Reader) (*System, error) {
	if _, err := br.Discard(len(containerMagic)); err != nil {
		return nil, err
	}
	var meta [2]uint32
	if err := binary.Read(br, binary.LittleEndian, &meta); err != nil {
		return nil, fmt.Errorf("adasense: reading container header: %w", err)
	}
	if meta[0] != containerVersion {
		return nil, fmt.Errorf("adasense: unsupported model container version %d", meta[0])
	}
	nBins := int(meta[1])
	if nBins < 0 || nBins > maxContainerBins {
		return nil, fmt.Errorf("adasense: implausible feature layout: %d spectral bins", nBins)
	}
	bins := make([]float64, nBins)
	if err := binary.Read(br, binary.LittleEndian, bins); err != nil {
		return nil, fmt.Errorf("adasense: reading feature layout: %w", err)
	}
	return loadNetwork(br, bins)
}

// loadNetwork reads the network stream and checks it against the feature
// layout.
func loadNetwork(br *bufio.Reader, bins []float64) (*System, error) {
	// Validate the layout itself (positive bin frequencies).
	if _, err := features.NewExtractor(bins); err != nil {
		return nil, fmt.Errorf("adasense: invalid feature layout: %w", err)
	}
	net, err := nn.Read(br)
	if err != nil {
		return nil, err
	}
	want := 3 * (2 + len(bins))
	if net.In != want {
		return nil, fmt.Errorf("adasense: model input size %d does not match its feature layout (%d features)", net.In, want)
	}
	return &System{Network: net, binFreqs: append([]float64(nil), bins...)}, nil
}
