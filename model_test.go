package adasense_test

import (
	"bytes"
	"encoding/binary"
	"testing"

	"adasense"
	"adasense/internal/nn"
	"adasense/internal/rng"
)

// containerHeader hand-crafts a model-container header for malformed-input
// tests: magic | version | bin count | bins.
func containerHeader(version uint32, bins []float64) *bytes.Buffer {
	var buf bytes.Buffer
	buf.WriteString("ADSC")
	binary.Write(&buf, binary.LittleEndian, version)
	binary.Write(&buf, binary.LittleEndian, uint32(len(bins)))
	binary.Write(&buf, binary.LittleEndian, bins)
	return &buf
}

func TestLoadLegacyRawNetworkFormat(t *testing.T) {
	sys, _ := trainedSystem(t)
	// The legacy format is the bare network stream, no container header.
	var buf bytes.Buffer
	if _, err := sys.Network.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := adasense.LoadSystem(&buf)
	if err != nil {
		t.Fatalf("legacy-format model failed to load: %v", err)
	}
	if loaded.Network.In != sys.Network.In {
		t.Fatal("legacy load lost dimensions")
	}
	if _, err := loaded.NewPipeline(); err != nil {
		t.Fatal(err)
	}
}

func TestSaveWritesVersionedContainer(t *testing.T) {
	sys, _ := trainedSystem(t)
	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if got := string(buf.Bytes()[:4]); got != "ADSC" {
		t.Fatalf("container magic = %q, want ADSC", got)
	}
	// The embedded network stream must follow the layout header:
	// 4 magic + 4 version + 4 count + 3×8 bins.
	if got := string(buf.Bytes()[36:40]); got != "ADNN" {
		t.Fatalf("embedded network magic = %q, want ADNN", got)
	}
}

func TestLoadTruncatedStreams(t *testing.T) {
	sys, _ := trainedSystem(t)
	var full bytes.Buffer
	if err := sys.Save(&full); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 2, 4, 9, 20, 40, full.Len() - 1} {
		if _, err := adasense.LoadSystem(bytes.NewReader(full.Bytes()[:n])); err == nil {
			t.Fatalf("stream truncated to %d bytes was accepted", n)
		}
	}
}

func TestLoadMismatchedFeatureLayout(t *testing.T) {
	sys, _ := trainedSystem(t)
	// A container declaring a 2-bin layout (12 features) around the
	// trained 15-input network must be rejected.
	buf := containerHeader(1, []float64{1, 2})
	if _, err := sys.Network.WriteTo(buf); err != nil {
		t.Fatal(err)
	}
	if _, err := adasense.LoadSystem(buf); err == nil {
		t.Fatal("layout/network size mismatch accepted")
	}

	// Same for the legacy format: a bare network whose input size does
	// not match the default layout.
	odd := nn.New(12, 4, adasense.NumActivities, rng.New(1))
	var legacy bytes.Buffer
	if _, err := odd.WriteTo(&legacy); err != nil {
		t.Fatal(err)
	}
	if _, err := adasense.LoadSystem(&legacy); err == nil {
		t.Fatal("legacy network with wrong input size accepted")
	}
}

func TestLoadRejectsBadContainers(t *testing.T) {
	sys, _ := trainedSystem(t)
	// Unsupported container version.
	buf := containerHeader(99, []float64{1, 2, 3})
	if _, err := sys.Network.WriteTo(buf); err != nil {
		t.Fatal(err)
	}
	if _, err := adasense.LoadSystem(buf); err == nil {
		t.Fatal("unknown container version accepted")
	}

	// Implausible bin count (header lies about the layout size).
	var lie bytes.Buffer
	lie.WriteString("ADSC")
	binary.Write(&lie, binary.LittleEndian, uint32(1))
	binary.Write(&lie, binary.LittleEndian, uint32(1<<30))
	if _, err := adasense.LoadSystem(&lie); err == nil {
		t.Fatal("implausible bin count accepted")
	}

	// Non-positive bin frequency.
	neg := containerHeader(1, []float64{1, -2, 3})
	if _, err := sys.Network.WriteTo(neg); err != nil {
		t.Fatal(err)
	}
	if _, err := adasense.LoadSystem(neg); err == nil {
		t.Fatal("negative bin frequency accepted")
	}
}

func TestContainerRoundTripServes(t *testing.T) {
	sys, _ := trainedSystem(t)
	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := adasense.LoadSystem(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The round-tripped system must be directly servable.
	svc, err := adasense.NewService(loaded)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := svc.OpenSession("rt")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	m := adasense.NewMotion(mustSchedule(t, adasense.Segment{Activity: adasense.Stand, Duration: 5}), 3)
	b := adasense.NewSampler(adasense.DefaultNoiseModel(), 4).Sample(m, sess.Config(), 0, 1)
	if _, err := sess.Push(b); err != nil {
		t.Fatal(err)
	}
}
