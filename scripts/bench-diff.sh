#!/usr/bin/env bash
# bench-diff.sh — compare two BENCH_PR<n>.json perf snapshots (see
# bench-json.sh for the shape) and print the ns/op and allocs/op deltas
# as a table, so a PR's perf story is one command instead of two JSON
# files side by side.
#
# Usage:
#   scripts/bench-diff.sh [--gate] OLD.json NEW.json
#
# With --gate the exit status enforces the hot-path perf contract: any
# benchmark that was allocation-free in OLD must stay allocation-free
# and within +25% ns/op in NEW. Allocating benchmarks are reported but
# never gated — their costs are dominated by work the snapshots already
# track explicitly. The ns/op gate also requires the regression to be
# at least 50ns absolute: snapshots come from -benchtime=100x runs,
# where a tens-of-ns benchmark's total measured time is a few µs and
# clock quantization alone can fake a >25% swing.
#
# On top of the OLD-derived rules, the benchmarks listed in
# REQUIRED_ZERO_ALLOC below must exist in NEW and report 0 allocs/op —
# these instruments sit on the serving hot path (an Observe per
# request), so they are pinned allocation-free from their first
# snapshot onward, not merely "no worse than last time".
#
# Benchmarks present in only one snapshot are listed as added/removed
# and never gated.
set -euo pipefail

gate=0
args=()
for a in "$@"; do
    case "$a" in
        --gate) gate=1 ;;
        *) args+=("$a") ;;
    esac
done
if [ "${#args[@]}" -ne 2 ] || [ ! -r "${args[0]}" ] || [ ! -r "${args[1]}" ]; then
    echo "usage: $0 [--gate] <old.json> <new.json>" >&2
    exit 2
fi
old=${args[0]}
new=${args[1]}

# package/name prefixes (the -N GOMAXPROCS suffix varies by runner).
REQUIRED_ZERO_ALLOC="adasense/internal/telemetry/BenchmarkTelemetryHistogramObserve adasense/BenchmarkSessionStateEncode adasense/internal/stream/BenchmarkStreamFrameEncode adasense/internal/stream/BenchmarkStreamFrameDecode adasense/internal/fixedpoint/BenchmarkQuantizedPredictWS"

extract() {
    jq -r '.benchmarks[] |
        [.package + "/" + .name, .ns_per_op, (.allocs_per_op // "-")] | @tsv' "$1"
}

{ extract "$old" | sed 's/^/OLD\t/'; extract "$new" | sed 's/^/NEW\t/'; } |
awk -F'\t' -v gate="$gate" -v oldfile="$old" -v newfile="$new" \
    -v required="$REQUIRED_ZERO_ALLOC" '
$1 == "OLD" { ons[$2] = $3; oal[$2] = $4; names[$2] = 1 }
$1 == "NEW" { nns[$2] = $3; nal[$2] = $4; names[$2] = 1 }
END {
    n = 0
    for (k in names) keys[n++] = k
    # Sort for a stable table regardless of map iteration order.
    for (i = 0; i < n; i++)
        for (j = i + 1; j < n; j++)
            if (keys[j] < keys[i]) { t = keys[i]; keys[i] = keys[j]; keys[j] = t }

    printf "%-64s %12s %12s %8s %8s %8s\n", \
        "benchmark (" oldfile " -> " newfile ")", "old ns/op", "new ns/op", "ns %", "old al", "new al"
    failures = 0
    for (i = 0; i < n; i++) {
        k = keys[i]
        if (!(k in ons)) {
            printf "%-64s %12s %12s %8s %8s %8s\n", k, "-", nns[k], "added", "-", nal[k]
            continue
        }
        if (!(k in nns)) {
            printf "%-64s %12s %12s %8s %8s %8s\n", k, ons[k], "-", "removed", oal[k], "-"
            continue
        }
        pct = (nns[k] - ons[k]) / ons[k] * 100
        flag = ""
        if (gate && oal[k] == "0") {
            if (nal[k] != "0") {
                flag = " GATE: allocation-free benchmark now allocates"
                failures++
            } else if (pct > 25 && nns[k] - ons[k] >= 50) {
                flag = " GATE: >25% ns/op regression on allocation-free hot path"
                failures++
            }
        }
        printf "%-64s %12s %12s %+7.1f%% %8s %8s%s\n", k, ons[k], nns[k], pct, oal[k], nal[k], flag
    }
    if (gate) {
        nreq = split(required, reqs, " ")
        for (r = 1; r <= nreq; r++) {
            found = 0
            for (i = 0; i < n; i++) {
                k = keys[i]
                if (index(k, reqs[r]) != 1 || !(k in nns)) continue
                found = 1
                if (nal[k] != "0") {
                    printf "GATE: %s must be allocation-free, reports %s allocs/op\n", k, nal[k] > "/dev/stderr"
                    failures++
                }
            }
            if (!found) {
                printf "GATE: required allocation-free benchmark %s missing from %s\n", reqs[r], newfile > "/dev/stderr"
                failures++
            }
        }
    }
    if (failures > 0) {
        printf "\nbench-diff: %d hot-path perf gate failure(s)\n", failures > "/dev/stderr"
        exit 1
    }
}
'
