#!/usr/bin/env bash
# bench-json.sh — convert `go test -bench` text output into a JSON perf
# snapshot, so CI can archive one BENCH_PR<n>.json per change and the
# perf trajectory becomes diffable instead of buried in build logs.
#
# Usage:
#   go test -bench=. -benchtime=100x -run '^$' ./... | tee bench.out
#   scripts/bench-json.sh bench.out > BENCH_PR5.json
#
# Output shape:
#   {
#     "goos": "linux", "goarch": "amd64",
#     "benchmarks": [
#       {"package": "adasense", "name": "BenchmarkServiceClassify-8",
#        "iterations": 100, "ns_per_op": 12345.0,
#        "bytes_per_op": 64, "allocs_per_op": 1},
#       ...
#     ]
#   }
# bytes_per_op/allocs_per_op appear only for benchmarks reporting them.
set -euo pipefail

if [ $# -ne 1 ] || [ ! -r "$1" ]; then
    echo "usage: $0 <go-test-bench-output-file>" >&2
    exit 2
fi

awk '
/^goos: /   { goos = $2 }
/^goarch: / { goarch = $2 }
/^pkg: /    { pkg = $2 }
$1 ~ /^Benchmark/ && NF >= 4 {
    name = $1; iters = $2
    ns = ""; bytes = ""; allocs = ""
    for (i = 3; i + 1 <= NF; i += 2) {
        if ($(i+1) == "ns/op") ns = $(i)
        else if ($(i+1) == "B/op") bytes = $(i)
        else if ($(i+1) == "allocs/op") allocs = $(i)
    }
    if (ns == "") next
    line = sprintf("    {\"package\": \"%s\", \"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", pkg, name, iters, ns)
    if (bytes != "")  line = line sprintf(", \"bytes_per_op\": %s", bytes)
    if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
    bench[n++] = line "}"
}
END {
    if (n == 0) {
        print "bench-json: no benchmark lines found" > "/dev/stderr"
        exit 1
    }
    printf "{\n"
    printf "  \"goos\": \"%s\",\n", goos
    printf "  \"goarch\": \"%s\",\n", goarch
    printf "  \"benchmarks\": [\n"
    for (i = 0; i < n; i++) printf "%s%s\n", bench[i], (i < n - 1 ? "," : "")
    printf "  ]\n}\n"
}
' "$1"
