#!/usr/bin/env bash
# bench-report.sh — render every committed BENCH_PR<n>.json perf
# snapshot into one benchmark×snapshot markdown table (docs/perf.md),
# so the repo's perf trajectory reads as a single page instead of a
# pile of JSON files.
#
# Usage:
#   scripts/bench-report.sh            # rewrite docs/perf.md
#   scripts/bench-report.sh --check    # fail if docs/perf.md is stale
#
# The report is a pure function of the committed snapshots (the
# timestamp column is each snapshot's git commit date, not the clock),
# so CI regenerates it and diffs: a PR that lands a new snapshot
# without re-running this script fails the check.
set -euo pipefail
cd "$(dirname "$0")/.." || exit 1

mode=write
if [ "${1:-}" = "--check" ]; then
    mode=check
fi

shopt -s nullglob
snaps=$(printf '%s\n' BENCH_PR*.json | sort -V)
if [ -z "$snaps" ]; then
    echo "bench-report: no BENCH_PR*.json snapshots found" >&2
    exit 1
fi

render() {
    echo "# Performance trend"
    echo
    echo "Cross-PR \`ns/op\` trajectory of every benchmark, one column per"
    echo "committed perf snapshot (see \`scripts/bench-json.sh\` for how a"
    echo "snapshot is taken). Regenerate with \`scripts/bench-report.sh\`;"
    echo "CI fails if this page lags the snapshots."
    echo
    echo "The \`BenchmarkStreamPush*\` rows compare one sensor-batch push over"
    echo "HTTP/JSON against the same gateway's ADSP streaming ingress"
    echo "(WebSocket and raw TCP, [streaming.md](streaming.md)): the streaming"
    echo "path's per-push speedup — ≥5× is the capacity contract — reads"
    echo "directly off their ns/op ratio."
    echo
    echo "| snapshot | commit date | goos/goarch |"
    echo "|---|---|---|"
    while IFS= read -r s; do
        # Uncommitted snapshots (a fresh CI run) carry no commit date.
        date=$(git log -1 --format=%cs -- "$s" 2>/dev/null || true)
        printf '| %s | %s | %s |\n' "${s%.json}" "${date:-uncommitted}" \
            "$(jq -r '.goos + "/" + .goarch' "$s")"
    done <<< "$snaps"
    echo

    # One row per benchmark, one ns/op column per snapshot, plus the
    # latest snapshot's allocs/op. Missing cells mean the benchmark did
    # not exist in that snapshot.
    {
        while IFS= read -r s; do
            jq -r --arg tag "${s%.json}" '.benchmarks[] |
                [$tag, .package + " " + .name, (.ns_per_op | tostring),
                 ((.allocs_per_op // "") | tostring)] | @tsv' "$s"
        done <<< "$snaps"
    } | awk -F'\t' '
    {
        if (!($1 in tagseen)) { tagseen[$1] = 1; tags[nt++] = $1 }
        if (!($2 in keyseen)) { keyseen[$2] = 1; keys[nk++] = $2 }
        ns[$1 SUBSEP $2] = $3
        al[$1 SUBSEP $2] = $4
    }
    END {
        for (i = 0; i < nk; i++)
            for (j = i + 1; j < nk; j++)
                if (keys[j] < keys[i]) { t = keys[i]; keys[i] = keys[j]; keys[j] = t }
        last = tags[nt - 1]
        printf "| benchmark |"
        for (i = 0; i < nt; i++) printf " %s ns/op |", tags[i]
        printf " allocs/op (%s) |\n", last
        printf "|---|"
        for (i = 0; i < nt; i++) printf "---|"
        printf "---|\n"
        for (k = 0; k < nk; k++) {
            key = keys[k]
            split(key, parts, " ")
            printf "| `%s` `%s` |", parts[1], parts[2]
            for (i = 0; i < nt; i++) {
                v = ns[tags[i] SUBSEP key]
                printf " %s |", (v == "" ? "—" : v)
            }
            a = al[last SUBSEP key]
            printf " %s |\n", (a == "" ? "—" : a)
        }
    }'
}

if [ "$mode" = "check" ]; then
    if ! diff -u docs/perf.md <(render) >&2; then
        echo "bench-report: docs/perf.md is stale — run scripts/bench-report.sh" >&2
        exit 1
    fi
    echo "bench-report: docs/perf.md is current"
else
    render > docs/perf.md
    echo "bench-report: wrote docs/perf.md ($(echo "$snaps" | wc -l | tr -d ' ') snapshot(s))"
fi
