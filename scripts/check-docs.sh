#!/usr/bin/env bash
# check-docs.sh — fail if docs/*.md reference an adasense symbol that
# `go doc` cannot resolve. Docs cite API as backticked `adasense.Name`
# or `adasense.Type.Method`; every such citation must exist, so renames
# and removals cannot silently strand the documentation.
set -euo pipefail
cd "$(dirname "$0")/.."

syms=$(grep -rhoE '`adasense\.[A-Za-z0-9]+(\.[A-Za-z0-9]+)?`' docs/*.md | tr -d '`' | sort -u || true)
if [ -z "$syms" ]; then
    echo "check-docs: no adasense symbol references found in docs/*.md" >&2
    exit 1
fi

fail=0
for sym in $syms; do
    if ! go doc "$sym" >/dev/null 2>&1; then
        echo "check-docs: docs reference unresolved symbol: $sym" >&2
        fail=1
    fi
done
if [ "$fail" -eq 0 ]; then
    echo "check-docs: $(echo "$syms" | wc -l | tr -d ' ') symbol reference(s) resolve"
fi
exit $fail
