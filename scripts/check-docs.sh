#!/usr/bin/env bash
# check-docs.sh — fail if the documentation has gone stale:
#   1. every backticked `adasense.Name` / `adasense.Type.Method` cited
#      in docs/*.md must resolve via `go doc`, so renames and removals
#      cannot silently strand the documentation;
#   2. every relative markdown link in README.md and docs/*.md must
#      point at an existing file, so docs pages cannot cross-reference
#      a page that was moved or never written;
#   3. every Prometheus series the code emits must be documented in
#      docs/operations.md or docs/observability.md, so a new metric
#      cannot ship without its reference entry;
#   4. docs/streaming.md (the normative ADSP wire reference) must list
#      every frame type and close code internal/stream/frame.go defines
#      with its wire value, and must not cite a constant the code has
#      dropped — the spec and the implementation cannot drift apart.
set -euo pipefail
cd "$(dirname "$0")/.." || exit 1

fail=0

# --- cross-reference links ---------------------------------------------
for f in README.md docs/*.md; do
    dir=$(dirname "$f")
    while IFS= read -r target; do
        case "$target" in
        http://*|https://*|mailto:*|'#'*) continue ;;
        esac
        path="$dir/${target%%#*}"
        if [ ! -e "$path" ]; then
            echo "check-docs: $f links to missing file: $target" >&2
            fail=1
        fi
    done < <(grep -oE '\]\([^)]+\)' "$f" | sed -E 's/^\]\(//; s/\)$//')
done
if [ "$fail" -eq 0 ]; then
    echo "check-docs: all relative doc links resolve"
fi

# --- API symbol citations ----------------------------------------------
syms=$(grep -rhoE '`adasense\.[A-Za-z0-9]+(\.[A-Za-z0-9]+)?`' docs/*.md | tr -d '`' | sort -u || true)
if [ -z "$syms" ]; then
    echo "check-docs: no adasense symbol references found in docs/*.md" >&2
    exit 1
fi

while IFS= read -r sym; do
    if ! go doc "$sym" >/dev/null 2>&1; then
        echo "check-docs: docs reference unresolved symbol: $sym" >&2
        fail=1
    fi
done <<< "$syms"
if [ "$fail" -eq 0 ]; then
    echo "check-docs: $(echo "$syms" | wc -l | tr -d ' ') symbol reference(s) resolve"
fi

# --- metric series coverage --------------------------------------------
# Every series emitted through the telemetry encoder (Counter / Gauge /
# GaugeWith / Histogram calls in non-test code) must appear in the
# metrics reference pages.
series=$(grep -rhoE '\.(Counter|CounterVec|Gauge|GaugeWith|Histogram)\("adasense_[a-z0-9_]+"' \
    --include='*.go' --exclude='*_test.go' . |
    sed -E 's/.*"(adasense_[a-z0-9_]+)"/\1/' | sort -u)
if [ -z "$series" ]; then
    echo "check-docs: no emitted metric series found in the code" >&2
    exit 1
fi
while IFS= read -r s; do
    if ! grep -q "$s" docs/operations.md docs/observability.md; then
        echo "check-docs: emitted series $s is documented in neither docs/operations.md nor docs/observability.md" >&2
        fail=1
    fi
done <<< "$series"
if [ "$fail" -eq 0 ]; then
    echo "check-docs: $(echo "$series" | wc -l | tr -d ' ') emitted metric series documented"
fi

# --- ADSP wire-protocol constants --------------------------------------
# Both directions: every frame type / close code the code defines must
# appear in docs/streaming.md with its wire value on the same line, and
# every constant the spec cites must still exist in the code.
spec=docs/streaming.md
if [ ! -f "$spec" ]; then
    echo "check-docs: $spec missing (normative ADSP wire reference)" >&2
    fail=1
else
    nconst=0
    while IFS=$'\t' read -r name val; do
        nconst=$((nconst + 1))
        if ! grep -qE "\b${name}\b.*\b${val}\b|\b${val}\b.*\b${name}\b" "$spec"; then
            echo "check-docs: $spec does not document $name = $val" >&2
            fail=1
        fi
    done < <(awk '/FrameType = 0x/  { printf "%s\t%s\n", $1, $4 }
                  /CloseCode = [0-9]+$/ { printf "%s\t%s\n", $1, $4 }' internal/stream/frame.go)
    if [ "$nconst" -lt 20 ]; then
        echo "check-docs: extracted only $nconst ADSP constants from internal/stream/frame.go (extraction broken?)" >&2
        fail=1
    fi
    while IFS= read -r name; do
        if ! grep -q "\b${name}\b" internal/stream/frame.go; then
            echo "check-docs: $spec cites unknown stream constant $name" >&2
            fail=1
        fi
    done < <(grep -ohE '`(Frame[A-Z][A-Za-z]*|Code[A-Z][A-Za-z]*)`' "$spec" | tr -d '`' | sort -u)
    if [ "$fail" -eq 0 ]; then
        echo "check-docs: $nconst ADSP wire constants match $spec"
    fi
fi
exit $fail
