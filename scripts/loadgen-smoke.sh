#!/usr/bin/env bash
# loadgen-smoke.sh — end-to-end smoke for the load-generation path: build
# the real binaries, federate two gateway processes, drive a strict
# fixed-budget loadgen run against them, and validate the JSON report.
#
# Strict mode makes the run the gate: any non-2xx push, shed offer,
# transport error or malformed report exits non-zero. The event budget
# (rather than wall clock) keeps the run deterministic in CI.
set -euo pipefail
cd "$(dirname "$0")/.." || exit 1

workdir=$(mktemp -d)
pid_a=""
pid_b=""
cleanup() {
    [ -n "$pid_a" ] && kill "$pid_a" 2>/dev/null
    [ -n "$pid_b" ] && kill "$pid_b" 2>/dev/null
    wait 2>/dev/null
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "loadgen-smoke: building binaries"
go build -o "$workdir/adasense-gateway" ./cmd/adasense-gateway
go build -o "$workdir/adasense-loadgen" ./cmd/adasense-loadgen

# Fixed high ports: CI runners are single-tenant, and fixed ports keep
# the peer list printable in failure logs.
port_a=18734
port_b=18735
stream_a=18744
stream_b=18745
peers="gw-a=http://127.0.0.1:${port_a},gw-b=http://127.0.0.1:${port_b}"

# Small startup-training corpus: the smoke gates the serving path, not
# model quality.
"$workdir/adasense-gateway" -addr "127.0.0.1:${port_a}" -train-windows 300 \
    -self gw-a -peers "$peers" -stream-addr "127.0.0.1:${stream_a}" -log-level warn &
pid_a=$!
"$workdir/adasense-gateway" -addr "127.0.0.1:${port_b}" -train-windows 300 \
    -self gw-b -peers "$peers" -stream-addr "127.0.0.1:${stream_b}" -log-level warn &
pid_b=$!

wait_healthy() {
    local url=$1 i
    for i in $(seq 1 120); do
        if curl -sf "$url/healthz" > /dev/null 2>&1; then
            return 0
        fi
        sleep 0.5
    done
    echo "loadgen-smoke: $url never became healthy" >&2
    return 1
}
wait_healthy "http://127.0.0.1:${port_a}"
wait_healthy "http://127.0.0.1:${port_b}"

echo "loadgen-smoke: driving the fleet"
report="$workdir/report.json"
"$workdir/adasense-loadgen" \
    -targets "http://127.0.0.1:${port_a},http://127.0.0.1:${port_b}" \
    -devices 40 -rate 100 -events 600 -seed 7 \
    -workers 64 -attempts 4 -strict -out "$report"

echo "loadgen-smoke: validating the report"
jq -e '
    .totals.offered == 600 and
    .totals.push_2xx == 600 and
    .totals.lost == 0 and
    (.phases | length) == 1 and
    .routes.push.count == 600 and
    .routes.push.p50_s <= .routes.push.p95_s and
    .routes.push.p95_s <= .routes.push.p99_s and
    .routes.open.count >= 40 and
    (.cohorts | to_entries | map(.value) | add) == 40
' "$report" > /dev/null || {
    echo "loadgen-smoke: report failed validation:" >&2
    cat "$report" >&2
    exit 1
}
echo "loadgen-smoke: OK ($(jq -c '.routes.push' "$report"))"

# Second strict pass over the ADSP streaming ingress: one persistent
# binary connection per device instead of a request per push. Targets
# mix the transports deliberately — gw-a's raw -stream-addr listener and
# gw-b's WebSocket upgrade — and devices entering at the wrong replica
# must follow the redirect to their owner for the run to stay clean.
echo "loadgen-smoke: driving the fleet over ADSP streams"
stream_report="$workdir/report-stream.json"
"$workdir/adasense-loadgen" \
    -targets "tcp://127.0.0.1:${stream_a},http://127.0.0.1:${port_b}" \
    -transport stream \
    -devices 40 -rate 100 -events 600 -seed 7 \
    -workers 64 -attempts 4 -strict -out "$stream_report"

echo "loadgen-smoke: validating the stream report"
jq -e '
    .transport == "stream" and
    .totals.offered == 600 and
    .totals.push_2xx == 600 and
    .totals.lost == 0 and
    .routes.push.count == 600 and
    .routes.push.p50_s <= .routes.push.p95_s and
    .routes.open.count >= 40
' "$stream_report" > /dev/null || {
    echo "loadgen-smoke: stream report failed validation:" >&2
    cat "$stream_report" >&2
    exit 1
}
echo "loadgen-smoke: OK over streams ($(jq -c '.routes.push' "$stream_report"))"
