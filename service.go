package adasense

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"adasense/internal/core"
	"adasense/internal/mcu"
	"adasense/internal/rng"
	"adasense/internal/sensor"
	"adasense/internal/sim"
	"adasense/internal/telemetry"
)

// Batch is a contiguous run of 3-axis readings produced under a single
// sensor configuration — the unit applications push into a Session.
type Batch = sensor.Batch

// NoiseModel is the sensor's stochastic reading model.
type NoiseModel = sensor.NoiseModel

// DefaultNoiseModel returns BMI160-class noise constants.
func DefaultNoiseModel() NoiseModel { return sensor.DefaultNoiseModel() }

// Sampler draws noisy, quantized readings from a synthetic motion signal;
// it is the software stand-in for a real IMU's data path.
type Sampler = sensor.Sampler

// NewSampler returns a deterministic sampler with the given noise model.
func NewSampler(noise NoiseModel, seed uint64) *Sampler {
	return sensor.NewSampler(noise, rng.New(seed))
}

// MCUModel is the processing unit's energy model.
type MCUModel = mcu.Model

// DefaultMCUModel returns Cortex-M4-class MCU constants.
func DefaultMCUModel() MCUModel { return mcu.Default() }

// serviceConfig holds the shared defaults a Service applies to every
// session and simulation it creates.
type serviceConfig struct {
	windowSec     float64
	hopSec        float64
	power         sensor.PowerModel
	noise         sensor.NoiseModel
	mcu           mcu.Model
	newController func() Controller
}

// Option configures a Service. Options are applied in order at
// NewService time; a failing option aborts construction.
type Option func(*serviceConfig) error

// WithWindow sets the classification window length in seconds (default
// 2, the paper's).
func WithWindow(sec float64) Option {
	return func(c *serviceConfig) error {
		if sec <= 0 {
			return fmt.Errorf("adasense: non-positive window %v", sec)
		}
		c.windowSec = sec
		return nil
	}
}

// WithHop sets the classification hop in seconds (default 1, the
// paper's). The window must be at least one hop long.
func WithHop(sec float64) Option {
	return func(c *serviceConfig) error {
		if sec <= 0 {
			return fmt.Errorf("adasense: non-positive hop %v", sec)
		}
		c.hopSec = sec
		return nil
	}
}

// WithControllerFactory sets the factory minting each session's (and each
// RunMany worker's) adaptation policy. The factory must return a fresh,
// unshared Controller on every call; it may be invoked from multiple
// goroutines. The default is NewSPOTWithConfidence(10), the paper's
// operating point.
func WithControllerFactory(f func() Controller) Option {
	return func(c *serviceConfig) error {
		if f == nil {
			return fmt.Errorf("adasense: nil controller factory")
		}
		c.newController = f
		return nil
	}
}

// WithPowerModel overrides the sensor's duty-cycle current model.
func WithPowerModel(p PowerModel) Option {
	return func(c *serviceConfig) error {
		c.power = p
		return nil
	}
}

// WithNoiseModel overrides the sensor's reading-noise model used by
// simulations.
func WithNoiseModel(n NoiseModel) Option {
	return func(c *serviceConfig) error {
		c.noise = n
		return nil
	}
}

// WithMCUModel overrides the processing unit's energy model used by
// simulations.
func WithMCUModel(m MCUModel) Option {
	return func(c *serviceConfig) error {
		c.mcu = m
		return nil
	}
}

// Service is the concurrent serving layer over one immutable trained
// System: the deployment shape of the paper's central design, where a
// single shared classifier serves every sensor configuration — and, here,
// every connected device. A Service is safe for concurrent use by many
// goroutines: OpenSession, Classify, Run and RunMany may all be called
// simultaneously. Pipeline scratch buffers are recycled through an
// internal sync.Pool, so steady-state serving does not allocate per
// session or per one-shot classification.
//
// The Service never mutates its System; swapping in a retrained model
// means building a new Service, leaving sessions on the old one
// undisturbed.
type Service struct {
	sys *System
	cfg serviceConfig

	pipes sync.Pool // *Pipeline, all over sys's shared network

	// tel counts the service's data path (classify calls, batches,
	// events, pool hits/misses). Always non-nil; a Gateway replaces it
	// with its own shared counter set before publishing the service, so
	// counters survive model hot-swaps.
	tel *telemetry.Counters

	// lat, when non-nil, receives per-stage latency observations from
	// pipelines this service checks out (feature extraction, forward
	// pass). A Gateway points it at its own histogram set before
	// publishing the service; a bare Service leaves it nil and pays
	// nothing on the classify path.
	lat *telemetry.Latencies

	// gen is the gateway model generation this service was published
	// under; session snapshots pin it so a restore onto a different
	// model is refused. A bare Service stays at 0. Set before the
	// service is published, never mutated after.
	gen uint64
}

// NewService wraps a trained system in a serving layer. The options set
// the defaults shared by every session and simulation; omitted options
// keep the paper's values (2 s window, 1 s hop, BMI160-class power and
// noise models, Cortex-M4-class MCU model, SPOT-with-confidence
// controller at a 10 s threshold).
func NewService(sys *System, opts ...Option) (*Service, error) {
	if sys == nil || sys.Network == nil {
		return nil, fmt.Errorf("adasense: NewService needs a trained system")
	}
	cfg := serviceConfig{
		windowSec:     2,
		hopSec:        1,
		power:         sensor.DefaultPowerModel(),
		noise:         sensor.DefaultNoiseModel(),
		mcu:           mcu.Default(),
		newController: func() Controller { return NewSPOTWithConfidence(10) },
	}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.windowSec < cfg.hopSec {
		return nil, fmt.Errorf("adasense: window %v shorter than hop %v", cfg.windowSec, cfg.hopSec)
	}
	// Surface feature-layout mismatches now rather than on first use; the
	// validation pipeline seeds the pool.
	p, err := sys.NewPipeline()
	if err != nil {
		return nil, err
	}
	svc := &Service{sys: sys, cfg: cfg, tel: &telemetry.Counters{}}
	svc.pipes.Put(p)
	return svc, nil
}

// System returns the immutable trained system the service serves.
func (svc *Service) System() *System { return svc.sys }

// Window returns the service's classification window length in seconds.
func (svc *Service) Window() float64 { return svc.cfg.windowSec }

// Hop returns the service's classification hop in seconds.
func (svc *Service) Hop() float64 { return svc.cfg.hopSec }

// PowerModel returns the service's sensor power model.
func (svc *Service) PowerModel() PowerModel { return svc.cfg.power }

// acquire checks a pipeline out of the pool, building a fresh one on a
// pool miss. A build failure surfaces the underlying construction error
// (not a generic message), so callers can see why — e.g. a feature-layout
// mismatch after the System was mutated behind the service's back.
func (svc *Service) acquire() (*Pipeline, error) {
	if p, _ := svc.pipes.Get().(*Pipeline); p != nil {
		svc.tel.PoolHit()
		svc.instrument(p)
		return p, nil
	}
	svc.tel.PoolMiss()
	p, err := svc.sys.NewPipeline()
	if err != nil {
		return nil, fmt.Errorf("adasense: building pipeline for shared classifier: %w", err)
	}
	svc.instrument(p)
	return p, nil
}

// instrument points the pipeline's stage hook at the service's latency
// histograms. The closure is minted once per pipeline (pipelines are
// pooled), not per classification, and only on instrumented services.
func (svc *Service) instrument(p *Pipeline) {
	if svc.lat == nil || p.Stages != nil {
		return
	}
	lat := svc.lat
	p.Stages = func(extract, classify time.Duration) {
		lat.ObserveStage(telemetry.StageExtract, extract)
		lat.ObserveStage(telemetry.StageClassify, classify)
	}
}

func (svc *Service) release(p *Pipeline) {
	if p != nil {
		svc.pipes.Put(p)
	}
}

// Classify runs one stateless classification of a raw sensor window. It
// is safe for concurrent use; scratch buffers come from the service's
// pool, so the call does not allocate in steady state.
func (svc *Service) Classify(b *Batch) (Classification, error) {
	if b == nil || b.Len() == 0 {
		return Classification{}, fmt.Errorf("adasense: Classify needs a non-empty batch")
	}
	p, err := svc.acquire()
	if err != nil {
		return Classification{}, err
	}
	defer svc.release(p)
	svc.tel.ClassifyCall()
	return p.Classify(b), nil
}

// Session is one device's independent real-time serving state: an engine
// over the shared classifier plus a private controller, minted by
// Service.OpenSession. A Session is goroutine-confined — drive it from
// one goroutine (or guard it yourself); distinct sessions are fully
// independent and may run in parallel.
type Session struct {
	id     string
	svc    *Service
	engine *Engine
	pipe   *Pipeline
	closed bool

	// elapsedSec/chargeUC accumulate the device's sensing-energy
	// estimate across every pushed batch (the paper's battery-lifetime
	// metric, tracked live per device).
	elapsedSec float64
	chargeUC   float64
}

// OpenSession mints an independent session. The id is an opaque caller
// label (device id, user id) carried for bookkeeping. OpenSession is safe
// to call concurrently with every other Service method.
func (svc *Service) OpenSession(id string) (*Session, error) {
	pipe, err := svc.acquire()
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(pipe, svc.cfg.newController(), svc.cfg.windowSec, svc.cfg.hopSec)
	if err != nil {
		svc.release(pipe)
		return nil, err
	}
	return &Session{id: id, svc: svc, engine: eng, pipe: pipe}, nil
}

// ID returns the caller-supplied session label.
func (s *Session) ID() string { return s.id }

// Config returns the sensor configuration the session's device must
// currently sample at.
func (s *Session) Config() Config { return s.engine.Config() }

// Push feeds a batch of raw readings sampled under the session's current
// configuration and returns the classification events it completed. See
// Engine.Push for the switch-and-discard semantics on configuration
// changes.
func (s *Session) Push(b *Batch) ([]Event, error) {
	if s.closed {
		return nil, fmt.Errorf("adasense: session %q is closed", s.id)
	}
	events, err := s.engine.Push(b)
	if err != nil {
		return nil, err
	}
	// The device sampled every reading in the batch at b.Config even
	// when a mid-batch switch discards the tail, so the whole duration
	// is charged at that configuration.
	s.elapsedSec += b.Duration()
	s.chargeUC += s.svc.cfg.power.ChargeUC(b.Config, b.Duration())
	s.svc.tel.BatchPushed(len(events))
	return events, nil
}

// EnergyEstimate is a session's accumulated sensing-energy estimate:
// how long the device has been sampling and the modeled sensor charge
// that cost, per the service's PowerModel.
type EnergyEstimate struct {
	// ElapsedSec is the total sampled time across all pushed batches.
	ElapsedSec float64
	// ChargeUC is the modeled sensor charge consumed, in microcoulombs.
	ChargeUC float64
}

// AvgCurrentUA returns the average modeled sensor current in µA (0
// before any data).
func (e EnergyEstimate) AvgCurrentUA() float64 {
	if e.ElapsedSec <= 0 {
		return 0
	}
	return e.ChargeUC / e.ElapsedSec
}

// Energy returns the session's accumulated sensing-energy estimate.
func (s *Session) Energy() EnergyEstimate {
	return EnergyEstimate{ElapsedSec: s.elapsedSec, ChargeUC: s.chargeUC}
}

// Snapshot captures the session's live state — adaptation trajectory,
// window remainder, energy estimate, pinned model generation — as a
// SessionState ready for ADSS encoding. The session keeps running.
func (s *Session) Snapshot() (*SessionState, error) {
	st := &SessionState{}
	if err := s.SnapshotInto(st); err != nil {
		return nil, err
	}
	return st, nil
}

// SnapshotInto is Snapshot into a caller-owned SessionState, reusing its
// slices when they have capacity.
func (s *Session) SnapshotInto(st *SessionState) error {
	if s.closed {
		return fmt.Errorf("adasense: session %q is closed", s.id)
	}
	st.Generation = s.svc.gen
	st.WindowSec = s.svc.cfg.windowSec
	st.HopSec = s.svc.cfg.hopSec
	s.engine.SnapshotInto(&st.Engine)
	st.Energy = EnergyEstimate{ElapsedSec: s.elapsedSec, ChargeUC: s.chargeUC}
	return nil
}

// Restore replaces the session's state with a snapshot taken from a
// session of an identically configured service — same window/hop
// geometry and controller flavor. The model generation is NOT checked
// here (a bare Service has none); gateway-level restores enforce it. On
// error the session is left Reset, the cold-open state.
func (s *Session) Restore(st *SessionState) error {
	if s.closed {
		return fmt.Errorf("adasense: session %q is closed", s.id)
	}
	if st.WindowSec != s.svc.cfg.windowSec || st.HopSec != s.svc.cfg.hopSec {
		return fmt.Errorf("adasense: snapshot geometry %v/%v differs from service %v/%v",
			st.WindowSec, st.HopSec, s.svc.cfg.windowSec, s.svc.cfg.hopSec)
	}
	if !(st.Energy.ElapsedSec >= 0) || !(st.Energy.ChargeUC >= 0) {
		return fmt.Errorf("adasense: snapshot energy estimate %v s / %v µC is not non-negative",
			st.Energy.ElapsedSec, st.Energy.ChargeUC)
	}
	if err := s.engine.Restore(&st.Engine); err != nil {
		s.elapsedSec, s.chargeUC = 0, 0
		return err
	}
	s.elapsedSec = st.Energy.ElapsedSec
	s.chargeUC = st.Energy.ChargeUC
	return nil
}

// Reset returns the session's engine, controller and energy estimate to
// their initial state, as after OpenSession.
func (s *Session) Reset() {
	if !s.closed {
		s.engine.Reset()
		s.elapsedSec, s.chargeUC = 0, 0
	}
}

// Close releases the session's pipeline scratch buffers back to the
// service. Closing twice is a no-op; a closed session rejects Push,
// while Config keeps reporting the last configuration in effect.
func (s *Session) Close() {
	if s.closed {
		return
	}
	// The engine is kept: Config reads only session-local state. Push
	// and Reset are guarded, so the pooled pipeline is never touched
	// again through this session.
	s.closed = true
	s.svc.release(s.pipe)
	s.pipe = nil
}

// RunSpec describes one closed-loop simulation for Service.Run and
// Service.RunMany. The service fills in everything SimulationSpec would
// otherwise make every caller re-plumb: window/hop, power/noise/MCU
// models and (when Controller is nil) a fresh controller from the
// service's factory.
type RunSpec struct {
	// Motion is the ground-truth signal (required).
	Motion *Motion
	// Controller overrides the service's controller factory for this run.
	// It must not be shared with any other concurrently executing spec.
	Controller Controller
	// Seed drives the run's sampling noise; runs are deterministic given
	// (spec, seed).
	Seed uint64
	// Record enables trace recording; RecordAccel additionally records
	// raw per-sample readings (heavy).
	Record, RecordAccel bool
}

// Run executes one closed-loop simulation with the service's defaults.
// It is safe for concurrent use.
func (svc *Service) Run(ctx context.Context, spec RunSpec) (SimulationResult, error) {
	results, err := svc.RunMany(ctx, []RunSpec{spec}, 1)
	if err != nil {
		return SimulationResult{}, err
	}
	return results[0], nil
}

// RunMany fans the given closed-loop simulations across parallelism
// worker goroutines (GOMAXPROCS when <= 0) and returns one result per
// spec, in spec order. Workers reuse pooled pipelines, so the cost per
// run is the simulation itself.
//
// Partial-results contract: RunMany always returns a slice of
// len(specs). On success every entry is filled. When a run fails, the
// first failure is returned as the error and cancels the fan-out; when
// the context is canceled, workers stop claiming new specs and RunMany
// returns ctx.Err() promptly. In both cases each worker still finishes
// the spec it is on — a simulation is never abandoned mid-flight, and a
// completed run's result is never discarded — so the returned slice
// holds the result of every spec that started before the stop, while
// the entries of specs that never started stay zero-valued. Callers
// that care about partial progress should therefore check entries
// individually instead of discarding the slice on error.
func (svc *Service) RunMany(ctx context.Context, specs []RunSpec, parallelism int) ([]SimulationResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(specs) {
		parallelism = len(specs)
	}
	results := make([]SimulationResult, len(specs))
	if len(specs) == 0 {
		return results, ctx.Err()
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		cancel()
	}

	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pipe, err := svc.acquire()
			if err != nil {
				fail(err)
				return
			}
			defer svc.release(pipe)
			for {
				i := int(next.Add(1) - 1)
				if i >= len(specs) || ctx.Err() != nil {
					return
				}
				res, err := svc.runOne(specs[i], pipe)
				if err != nil {
					fail(fmt.Errorf("adasense: run %d: %w", i, err))
					return
				}
				results[i] = res
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return results, firstErr
	}
	return results, ctx.Err()
}

// runOne executes one spec on a worker-owned pipeline.
func (svc *Service) runOne(spec RunSpec, pipe *Pipeline) (SimulationResult, error) {
	ctl := spec.Controller
	if ctl == nil {
		ctl = svc.cfg.newController()
	}
	power, noise, mcuModel := svc.cfg.power, svc.cfg.noise, svc.cfg.mcu
	return sim.Run(sim.Spec{
		Motion:      spec.Motion,
		Controller:  ctl,
		Classifier:  pipe,
		WindowSec:   svc.cfg.windowSec,
		HopSec:      svc.cfg.hopSec,
		Power:       &power,
		Noise:       &noise,
		MCU:         &mcuModel,
		Record:      spec.Record,
		RecordAccel: spec.RecordAccel,
	}, rng.New(spec.Seed))
}
