package adasense_test

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"adasense"
	"adasense/internal/nn"
	"adasense/internal/rng"
)

func testService(t *testing.T, opts ...adasense.Option) *adasense.Service {
	t.Helper()
	sys, _ := trainedSystem(t)
	svc, err := adasense.NewService(sys, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func TestNewServiceValidation(t *testing.T) {
	sys, _ := trainedSystem(t)
	if _, err := adasense.NewService(nil); err == nil {
		t.Fatal("nil system accepted")
	}
	if _, err := adasense.NewService(sys, adasense.WithWindow(-1)); err == nil {
		t.Fatal("negative window accepted")
	}
	if _, err := adasense.NewService(sys, adasense.WithHop(0)); err == nil {
		t.Fatal("zero hop accepted")
	}
	if _, err := adasense.NewService(sys, adasense.WithWindow(1), adasense.WithHop(2)); err == nil {
		t.Fatal("window shorter than hop accepted")
	}
	if _, err := adasense.NewService(sys, adasense.WithControllerFactory(nil)); err == nil {
		t.Fatal("nil controller factory accepted")
	}
}

func TestServiceDefaultsAndOptions(t *testing.T) {
	svc := testService(t)
	if svc.Window() != 2 || svc.Hop() != 1 {
		t.Fatalf("defaults = %v/%v, want 2/1", svc.Window(), svc.Hop())
	}
	custom := adasense.PowerModel{ActiveCurrentUA: 90, SuspendCurrentUA: 1, WakeOverheadSec: 0.001}
	svc2 := testService(t,
		adasense.WithWindow(4),
		adasense.WithHop(2),
		adasense.WithPowerModel(custom),
		adasense.WithNoiseModel(adasense.DefaultNoiseModel()),
		adasense.WithMCUModel(adasense.DefaultMCUModel()),
	)
	if svc2.Window() != 4 || svc2.Hop() != 2 {
		t.Fatalf("options = %v/%v, want 4/2", svc2.Window(), svc2.Hop())
	}
	if svc2.PowerModel() != custom {
		t.Fatal("power model option lost")
	}
	// The hop option must reach the session's engine: a 4 s push at a
	// 2 s hop completes exactly two classification ticks.
	sess, err := svc2.OpenSession("hop-check")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	m := adasense.NewMotion(mustSchedule(t, adasense.Segment{Activity: adasense.Sit, Duration: 10}), 5)
	b := adasense.NewSampler(adasense.DefaultNoiseModel(), 6).Sample(m, sess.Config(), 0, 4)
	events, err := sess.Push(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("4 s push at 2 s hop produced %d events, want 2", len(events))
	}
}

func TestServiceControllerFactoryIsPerSession(t *testing.T) {
	var mu sync.Mutex
	minted := 0
	svc := testService(t, adasense.WithControllerFactory(func() adasense.Controller {
		mu.Lock()
		minted++
		mu.Unlock()
		return adasense.NewSPOT(5)
	}))
	for i := 0; i < 3; i++ {
		sess, err := svc.OpenSession(fmt.Sprintf("s%d", i))
		if err != nil {
			t.Fatal(err)
		}
		sess.Close()
	}
	if minted != 3 {
		t.Fatalf("factory minted %d controllers for 3 sessions", minted)
	}
}

func TestSessionLifecycle(t *testing.T) {
	svc := testService(t)
	sess, err := svc.OpenSession("dev-1")
	if err != nil {
		t.Fatal(err)
	}
	if sess.ID() != "dev-1" {
		t.Fatalf("ID = %q", sess.ID())
	}
	if sess.Config() != adasense.ParetoStates()[0] {
		t.Fatal("fresh session must start at the highest-accuracy configuration")
	}
	sess.Close()
	sess.Close() // idempotent
	if _, err := sess.Push(&adasense.Batch{Config: adasense.ParetoStates()[0]}); err == nil {
		t.Fatal("closed session accepted a push")
	}
	sess.Reset() // must be a no-op, not a panic
	if sess.Config() != adasense.ParetoStates()[0] {
		t.Fatal("closed session lost its last configuration")
	}
}

// sessionTrace summarizes one deterministic session run so concurrent
// executions can be compared against a serial reference.
type sessionTrace struct {
	events   int
	finalCfg string
	activity string // concatenated per-tick activity indices
	confSum  float64
}

// driveSession streams secs seconds of deterministic synthetic data
// through one fresh session. Everything is derived from id, so the same
// id always produces the same trace no matter what other goroutines do.
func driveSession(svc *adasense.Service, id int, secs int) (sessionTrace, error) {
	sess, err := svc.OpenSession(fmt.Sprintf("device-%d", id))
	if err != nil {
		return sessionTrace{}, err
	}
	defer sess.Close()
	seed := uint64(1000 + id)
	sched := adasense.RandomSchedule(seed, float64(secs), 10, 20)
	motion := adasense.NewMotion(sched, seed+1)
	sampler := adasense.NewSampler(adasense.DefaultNoiseModel(), seed+2)
	var tr sessionTrace
	var acts strings.Builder
	for tick := 0; tick < secs; tick++ {
		b := sampler.Sample(motion, sess.Config(), float64(tick), float64(tick)+1)
		events, err := sess.Push(b)
		if err != nil {
			return tr, err
		}
		for _, ev := range events {
			tr.events++
			fmt.Fprintf(&acts, "%d,", int(ev.Classification.Activity))
			tr.confSum += ev.Classification.Confidence
		}
	}
	tr.finalCfg = sess.Config().Name()
	tr.activity = acts.String()
	return tr, nil
}

// TestServiceConcurrentSessions drives twelve goroutines through one
// Service concurrently — each with its own Session — and checks every
// session reproduces its serial reference exactly. Run under -race this
// is the serving layer's isolation proof: one immutable shared network,
// per-session state, pooled scratch buffers.
func TestServiceConcurrentSessions(t *testing.T) {
	const sessions, secs = 12, 40
	svc := testService(t)

	// Serial references, one per session id.
	want := make([]sessionTrace, sessions)
	for id := range want {
		tr, err := driveSession(svc, id, secs)
		if err != nil {
			t.Fatal(err)
		}
		if tr.events < secs-5 {
			t.Fatalf("session %d produced only %d events over %d s", id, tr.events, secs)
		}
		want[id] = tr
	}

	got := make([]sessionTrace, sessions)
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for id := 0; id < sessions; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			got[id], errs[id] = driveSession(svc, id, secs)
		}(id)
	}
	wg.Wait()

	for id := 0; id < sessions; id++ {
		if errs[id] != nil {
			t.Fatalf("session %d: %v", id, errs[id])
		}
		if got[id] != want[id] {
			t.Fatalf("session %d diverged under concurrency:\n got %+v\nwant %+v", id, got[id], want[id])
		}
	}
}

// TestServiceClassifyConcurrent mixes stateless Classify calls from many
// goroutines with an active session, exercising the pipeline pool.
func TestServiceClassifyConcurrent(t *testing.T) {
	svc := testService(t)
	m := adasense.NewMotion(mustSchedule(t, adasense.Segment{Activity: adasense.Walk, Duration: 30}), 9)
	cfg := adasense.ParetoStates()[0]

	if _, err := svc.Classify(nil); err == nil {
		t.Fatal("nil batch accepted")
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sampler := adasense.NewSampler(adasense.DefaultNoiseModel(), uint64(50+g))
			for i := 0; i < 20; i++ {
				b := sampler.Sample(m, cfg, float64(i), float64(i)+2)
				cls, err := svc.Classify(b)
				if err != nil {
					errCh <- err
					return
				}
				if cls.Confidence <= 0 || cls.Confidence > 1 {
					errCh <- fmt.Errorf("confidence %v out of range", cls.Confidence)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

func TestServiceRunMatchesLegacySimulate(t *testing.T) {
	sys, _ := trainedSystem(t)
	svc := testService(t)
	sched := mustSchedule(t,
		adasense.Segment{Activity: adasense.Sit, Duration: 60},
		adasense.Segment{Activity: adasense.Walk, Duration: 60})

	got, err := svc.Run(context.Background(), adasense.RunSpec{
		Motion:     adasense.NewMotion(sched, 11),
		Controller: adasense.NewSPOTWithConfidence(8),
		Seed:       13,
	})
	if err != nil {
		t.Fatal(err)
	}

	pipe, err := sys.NewPipeline()
	if err != nil {
		t.Fatal(err)
	}
	want, err := adasense.Simulate(adasense.SimulationSpec{
		Motion:     adasense.NewMotion(sched, 11),
		Controller: adasense.NewSPOTWithConfidence(8),
		Classifier: pipe,
	}, 13)
	if err != nil {
		t.Fatal(err)
	}
	if got.SensorChargeUC != want.SensorChargeUC || got.Accuracy() != want.Accuracy() || got.Ticks != want.Ticks {
		t.Fatalf("Service.Run diverged from legacy Simulate:\n got %v/%v/%d\nwant %v/%v/%d",
			got.SensorChargeUC, got.Accuracy(), got.Ticks,
			want.SensorChargeUC, want.Accuracy(), want.Ticks)
	}
}

func TestServiceRunManyParallelMatchesSerial(t *testing.T) {
	svc := testService(t)
	specs := make([]adasense.RunSpec, 9)
	for i := range specs {
		seed := uint64(200 + i)
		specs[i] = adasense.RunSpec{
			Motion: adasense.NewMotion(adasense.RandomSchedule(seed, 120, 20, 40), seed+1),
			Seed:   seed + 2,
		}
	}
	serial, err := svc.RunMany(context.Background(), specs, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := svc.RunMany(context.Background(), specs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if serial[i].SensorChargeUC != parallel[i].SensorChargeUC ||
			serial[i].Accuracy() != parallel[i].Accuracy() {
			t.Fatalf("spec %d: parallel result diverged from serial", i)
		}
		if serial[i].Ticks != 120 {
			t.Fatalf("spec %d: ticks = %d, want 120", i, serial[i].Ticks)
		}
	}
}

// TestServiceAcquireSurfacesBuildError pins the pipeline pool's error
// contract: when a pool miss fails to build a pipeline, the caller sees
// the underlying construction error, not a generic message. The only way
// to make construction fail after NewService's validation is to mutate
// the System behind the service's back — which is exactly the misuse the
// error has to diagnose.
func TestServiceAcquireSurfacesBuildError(t *testing.T) {
	// A self-contained tiny system (15 inputs = 3 axes × (2 + 3 default
	// spectral bins)); the shared trainedSystem must not be mutated.
	sys := &adasense.System{Network: nn.New(15, 4, adasense.NumActivities, rng.New(1))}
	svc, err := adasense.NewService(sys)
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage: swap in a network whose input size contradicts the
	// feature layout. The pool holds one validated pipeline; opening
	// sessions without closing them drains it and forces a build.
	sys.Network = nn.New(10, 4, adasense.NumActivities, rng.New(2))
	for i := 0; i < 3; i++ {
		_, err = svc.OpenSession(fmt.Sprintf("drain-%d", i))
		if err != nil {
			break
		}
	}
	if err == nil {
		t.Fatal("pool rebuild over a corrupted system succeeded")
	}
	if !strings.Contains(err.Error(), "building pipeline for shared classifier") {
		t.Fatalf("error lost its context: %v", err)
	}
	if !strings.Contains(err.Error(), "extractor size") {
		t.Fatalf("error lost the underlying cause: %v", err)
	}
}

// cancelingController cancels a context the first time it observes a
// classification, then behaves like the baseline. It lets a test cancel
// RunMany deterministically from inside a running spec.
type cancelingController struct {
	adasense.Controller
	once   sync.Once
	cancel context.CancelFunc
}

func (c *cancelingController) Observe(a adasense.Activity, conf float64) {
	c.once.Do(c.cancel)
	c.Controller.Observe(a, conf)
}

// TestServiceRunManyCancelMidFanOut pins RunMany's partial-results
// contract: cancellation mid-fan-out returns ctx.Err(), the specs that
// completed before the stop keep their results, and the specs that never
// ran are zero-valued (Ticks == 0).
func TestServiceRunManyCancelMidFanOut(t *testing.T) {
	svc := testService(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	specs := make([]adasense.RunSpec, 4)
	for i := range specs {
		seed := uint64(400 + i)
		specs[i] = adasense.RunSpec{
			Motion: adasense.NewMotion(adasense.RandomSchedule(seed, 60, 10, 20), seed+1),
			Seed:   seed + 2,
		}
	}
	// Spec 0 pulls the plug as soon as it starts classifying; with one
	// worker, spec 0 still runs to completion and specs 1..3 never start.
	specs[0].Controller = &cancelingController{
		Controller: adasense.NewBaselineController(),
		cancel:     cancel,
	}

	results, err := svc.RunMany(ctx, specs, 1)
	if err != context.Canceled {
		t.Fatalf("mid-fan-out cancel returned %v, want context.Canceled", err)
	}
	if len(results) != len(specs) {
		t.Fatalf("len(results) = %d, want %d", len(results), len(specs))
	}
	if results[0].Ticks != 60 {
		t.Fatalf("in-flight spec lost its result: Ticks = %d, want 60", results[0].Ticks)
	}
	for i := 1; i < len(results); i++ {
		if results[i].Ticks != 0 {
			t.Fatalf("unrun spec %d has non-zero result: %+v", i, results[i])
		}
	}
}

func TestServiceRunManyErrors(t *testing.T) {
	svc := testService(t)
	// A spec with no motion fails validation; the error names the run.
	_, err := svc.RunMany(context.Background(), []adasense.RunSpec{{Seed: 1}}, 2)
	if err == nil {
		t.Fatal("nil motion accepted")
	}
	if !strings.Contains(err.Error(), "run 0") {
		t.Fatalf("error does not name the failing run: %v", err)
	}

	// A pre-canceled context returns promptly with ctx.Err().
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sched := adasense.RandomSchedule(3, 60, 10, 20)
	_, err = svc.RunMany(ctx, []adasense.RunSpec{
		{Motion: adasense.NewMotion(sched, 4), Seed: 5},
	}, 1)
	if err != context.Canceled {
		t.Fatalf("canceled context returned %v, want context.Canceled", err)
	}

	// Empty spec list is a no-op.
	res, err := svc.RunMany(context.Background(), nil, 4)
	if err != nil || len(res) != 0 {
		t.Fatalf("empty RunMany = %v, %v", res, err)
	}
}

func mustSchedule(t *testing.T, segs ...adasense.Segment) *adasense.Schedule {
	t.Helper()
	s, err := adasense.NewSchedule(segs)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
