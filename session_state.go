package adasense

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"adasense/internal/core"
)

// Session-state container format: ADSS is the ADSC model container's
// sibling — the same magic/version envelope family — carrying everything
// one live Session accumulates, so a device's adaptation trajectory can
// move between replicas without restarting from the top configuration.
//
// Layout: magic "ADSS" | uint32 version (1) | uint32 payload length |
// payload | uint32 CRC-32 (IEEE) of the payload.
//
// Payload, little-endian, in order: model generation (u64), window and
// hop seconds (f64 each), current sensor config (freq f64, avg window
// u32), pending samples (u32), window sample count (u32) followed by the
// X, Y and Z axes (f64 each), controller state kind (u32 length +
// bytes), controller state payload (u32 length + bytes), and the energy
// estimate (elapsed seconds f64, charge µC f64).
//
// The encoding is canonical: Decode consumes the payload exactly and
// rejects trailing bytes, so any accepted container re-encodes
// byte-identically. Floats travel as raw IEEE-754 bits, which keeps the
// round trip exact even for NaNs.
const (
	sessionStateMagic   = "ADSS"
	sessionStateVersion = 1

	// maxStateWindowSamples bounds the window remainder a container may
	// declare before anything is allocated from it — the same defense
	// the model loader applies to nn.Read's total-parameter count. The
	// largest real window is windowSec × 128 Hz, orders of magnitude
	// below this.
	maxStateWindowSamples = 1 << 16
	// maxStateKindBytes bounds the controller state-kind string.
	maxStateKindBytes = 64
	// maxStateCtlBytes bounds the controller state payload.
	maxStateCtlBytes = 4096

	// sessionStateEnvelope is the fixed byte cost around the payload:
	// magic, version, payload length, trailing CRC.
	sessionStateEnvelope = 4 + 4 + 4 + 4

	// MaxSessionStateBytes is the largest encoded container Decode
	// accepts; HTTP handlers use it as the request-body cap.
	MaxSessionStateBytes = sessionStateEnvelope + 8 + 2*8 + 12 + 4 + 4 +
		3*8*maxStateWindowSamples + 4 + maxStateKindBytes + 4 + maxStateCtlBytes + 2*8
)

// SessionState is the decoded form of one ADSS container: a
// point-in-time snapshot of a live Session. Zero value is an empty
// snapshot ready for Session.SnapshotInto.
type SessionState struct {
	// Generation is the gateway model generation the session's service
	// was pinned to (0 for a bare, non-gateway Service).
	Generation uint64
	// WindowSec and HopSec record the snapshotting service's
	// classification geometry; Restore rejects a mismatch.
	WindowSec, HopSec float64
	// Engine is the engine-level state: config, window remainder,
	// pending count, controller payload.
	Engine core.EngineState
	// Energy is the session's accumulated sensing-energy estimate.
	Energy EnergyEstimate
}

// EncodedLen returns the exact byte length AppendBinary will produce.
func (st *SessionState) EncodedLen() int {
	return sessionStateEnvelope + st.payloadLen()
}

func (st *SessionState) payloadLen() int {
	return 8 + 2*8 + 12 + 4 + 4 + 3*8*len(st.Engine.X) +
		4 + len(st.Engine.CtlKind) + 4 + len(st.Engine.CtlState) + 2*8
}

// AppendBinary appends the encoded container to dst and returns the
// extended slice; with a presized dst the encode does not allocate. It
// implements encoding.BinaryAppender.
func (st *SessionState) AppendBinary(dst []byte) ([]byte, error) {
	e := &st.Engine
	if len(e.X) != len(e.Y) || len(e.X) != len(e.Z) {
		return dst, fmt.Errorf("adasense: session state has ragged window axes %d/%d/%d",
			len(e.X), len(e.Y), len(e.Z))
	}
	if len(e.X) > maxStateWindowSamples {
		return dst, fmt.Errorf("adasense: session state window of %d samples exceeds %d",
			len(e.X), maxStateWindowSamples)
	}
	if len(e.CtlKind) > maxStateKindBytes {
		return dst, fmt.Errorf("adasense: controller state kind of %d bytes exceeds %d",
			len(e.CtlKind), maxStateKindBytes)
	}
	if len(e.CtlState) > maxStateCtlBytes {
		return dst, fmt.Errorf("adasense: controller state of %d bytes exceeds %d",
			len(e.CtlState), maxStateCtlBytes)
	}
	dst = append(dst, sessionStateMagic...)
	dst = binary.LittleEndian.AppendUint32(dst, sessionStateVersion)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(st.payloadLen()))
	payloadStart := len(dst)
	dst = binary.LittleEndian.AppendUint64(dst, st.Generation)
	dst = appendF64(dst, st.WindowSec)
	dst = appendF64(dst, st.HopSec)
	dst = appendF64(dst, e.Config.FreqHz)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(e.Config.AvgWindow))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(e.Pending))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(e.X)))
	for _, axis := range [3][]float64{e.X, e.Y, e.Z} {
		for _, v := range axis {
			dst = appendF64(dst, v)
		}
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(e.CtlKind)))
	dst = append(dst, e.CtlKind...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(e.CtlState)))
	dst = append(dst, e.CtlState...)
	dst = appendF64(dst, st.Energy.ElapsedSec)
	dst = appendF64(dst, st.Energy.ChargeUC)
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[payloadStart:])), nil
}

// Save writes the encoded container to w.
func (st *SessionState) Save(w io.Writer) error {
	buf, err := st.AppendBinary(make([]byte, 0, st.EncodedLen()))
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// LoadSessionState reads and decodes one ADSS container from r.
func LoadSessionState(r io.Reader) (*SessionState, error) {
	data, err := io.ReadAll(io.LimitReader(r, MaxSessionStateBytes+1))
	if err != nil {
		return nil, fmt.Errorf("adasense: reading session state: %w", err)
	}
	return DecodeSessionState(data)
}

// DecodeSessionState decodes one ADSS container. Every length field is
// bounds-checked before anything is sized from it, the payload CRC must
// match, and trailing bytes are rejected — an accepted container always
// re-encodes byte-identically. Structural validity only: semantic checks
// (config sanity, pending bounds, controller kind) belong to
// Session.Restore, so a container snapshot survives being decoded by a
// replica that cannot host it.
func DecodeSessionState(data []byte) (*SessionState, error) {
	if len(data) > MaxSessionStateBytes {
		return nil, fmt.Errorf("adasense: session state of %d bytes exceeds %d", len(data), MaxSessionStateBytes)
	}
	if len(data) < sessionStateEnvelope || string(data[:4]) != sessionStateMagic {
		return nil, fmt.Errorf("adasense: unrecognized session-state magic")
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != sessionStateVersion {
		return nil, fmt.Errorf("adasense: unsupported session-state version %d", v)
	}
	plen := int(binary.LittleEndian.Uint32(data[8:12]))
	if plen < 0 || len(data) != sessionStateEnvelope+plen {
		return nil, fmt.Errorf("adasense: session-state payload length %d does not match %d container bytes",
			plen, len(data))
	}
	payload := data[12 : 12+plen]
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(data[12+plen:]); got != want {
		return nil, fmt.Errorf("adasense: session-state checksum mismatch")
	}

	d := stateDecoder{buf: payload}
	st := &SessionState{}
	st.Generation = d.u64()
	st.WindowSec = d.f64()
	st.HopSec = d.f64()
	st.Engine.Config.FreqHz = d.f64()
	st.Engine.Config.AvgWindow = int(d.u32())
	st.Engine.Pending = int(d.u32())
	n := int(d.u32())
	if n > maxStateWindowSamples {
		return nil, fmt.Errorf("adasense: implausible session-state window: %d samples", n)
	}
	st.Engine.X = d.f64s(n)
	st.Engine.Y = d.f64s(n)
	st.Engine.Z = d.f64s(n)
	kindLen := int(d.u32())
	if kindLen > maxStateKindBytes {
		return nil, fmt.Errorf("adasense: implausible controller state kind: %d bytes", kindLen)
	}
	st.Engine.CtlKind = string(d.bytes(kindLen))
	ctlLen := int(d.u32())
	if ctlLen > maxStateCtlBytes {
		return nil, fmt.Errorf("adasense: implausible controller state: %d bytes", ctlLen)
	}
	st.Engine.CtlState = append([]byte(nil), d.bytes(ctlLen)...)
	st.Energy.ElapsedSec = d.f64()
	st.Energy.ChargeUC = d.f64()
	if d.err {
		return nil, fmt.Errorf("adasense: truncated session-state payload")
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("adasense: %d trailing bytes after session-state payload", len(d.buf))
	}
	return st, nil
}

// stateDecoder is a little-endian cursor over the payload; the first
// short read latches err and every later read returns zeros, so the
// caller checks once at the end.
type stateDecoder struct {
	buf []byte
	err bool
}

func (d *stateDecoder) bytes(n int) []byte {
	if d.err || n < 0 || len(d.buf) < n {
		d.err = true
		return nil
	}
	b := d.buf[:n]
	d.buf = d.buf[n:]
	return b
}

func (d *stateDecoder) u32() uint32 {
	b := d.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *stateDecoder) u64() uint64 {
	b := d.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *stateDecoder) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *stateDecoder) f64s(n int) []float64 {
	b := d.bytes(8 * n)
	if b == nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

func appendF64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}
