package adasense

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// codecState builds a representative SessionState for codec tests: a
// mid-descent SPOT payload, a partially filled window, non-trivial
// energy, and a NaN smuggled into the window to pin bit-exact float
// round-tripping.
func codecState() *SessionState {
	st := &SessionState{
		Generation: 7,
		WindowSec:  2,
		HopSec:     1,
	}
	st.Engine.Config = ParetoStates()[1]
	st.Engine.Pending = 13
	for i := 0; i < 37; i++ {
		v := float64(i) * 0.25
		st.Engine.X = append(st.Engine.X, v)
		st.Engine.Y = append(st.Engine.Y, -v)
		st.Engine.Z = append(st.Engine.Z, v*v)
	}
	st.Engine.X[5] = math.NaN()
	st.Engine.CtlKind = "spot/1"
	st.Engine.CtlState = []byte{2, 0, 0, 0, 1, 0, 0, 0, 3, 0, 0, 0, 1, 2, 0, 0, 0}
	st.Energy = EnergyEstimate{ElapsedSec: 123.5, ChargeUC: 9876.25}
	return st
}

// stEqual is reflect.DeepEqual over SessionState made NaN-tolerant by
// comparing float bit patterns through re-encoding.
func stEqual(t *testing.T, a, b *SessionState) {
	t.Helper()
	ab, err := a.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, bb) {
		t.Fatalf("states differ:\n%+v\n%+v", a, b)
	}
}

func TestSessionStateRoundTrip(t *testing.T) {
	st := codecState()
	buf, err := st.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != st.EncodedLen() {
		t.Fatalf("encoded %d bytes, EncodedLen says %d", len(buf), st.EncodedLen())
	}
	if len(buf) > MaxSessionStateBytes {
		t.Fatalf("encoded %d bytes exceeds MaxSessionStateBytes %d", len(buf), MaxSessionStateBytes)
	}
	got, err := DecodeSessionState(buf)
	if err != nil {
		t.Fatal(err)
	}
	stEqual(t, st, got)
	// NaN survived bit-exactly.
	if !math.IsNaN(got.Engine.X[5]) {
		t.Fatal("NaN window sample did not round-trip")
	}
	// Save writes the same bytes AppendBinary produces.
	var w bytes.Buffer
	if err := st.Save(&w); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w.Bytes(), buf) {
		t.Fatal("Save and AppendBinary disagree")
	}
	// LoadSessionState is Decode over a reader.
	got2, err := LoadSessionState(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	stEqual(t, st, got2)
}

func TestSessionStateRoundTripEmpty(t *testing.T) {
	// The cold minimum: fresh session, stateless controller, no window.
	st := &SessionState{WindowSec: 2, HopSec: 1}
	st.Engine.Config = ParetoStates()[0]
	buf, err := st.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSessionState(buf)
	if err != nil {
		t.Fatal(err)
	}
	stEqual(t, st, got)
}

func TestSessionStateAppendBinaryPresizedDoesNotGrow(t *testing.T) {
	st := codecState()
	dst := make([]byte, 0, st.EncodedLen())
	buf, err := st.AppendBinary(dst)
	if err != nil {
		t.Fatal(err)
	}
	if &buf[0] != &dst[:1][0] {
		t.Fatal("presized AppendBinary reallocated")
	}
}

func TestSessionStateAppendBinaryRejects(t *testing.T) {
	cases := []struct {
		name   string
		mangle func(*SessionState)
	}{
		{"ragged axes", func(st *SessionState) { st.Engine.Y = st.Engine.Y[:1] }},
		{"oversize window", func(st *SessionState) {
			n := 1<<16 + 1
			st.Engine.X = make([]float64, n)
			st.Engine.Y = make([]float64, n)
			st.Engine.Z = make([]float64, n)
		}},
		{"oversize kind", func(st *SessionState) { st.Engine.CtlKind = string(make([]byte, 65)) }},
		{"oversize controller state", func(st *SessionState) { st.Engine.CtlState = make([]byte, 4097) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := codecState()
			tc.mangle(st)
			if _, err := st.AppendBinary(nil); err == nil {
				t.Fatal("unencodable state accepted")
			}
		})
	}
}

func TestDecodeSessionStateRejects(t *testing.T) {
	valid, err := codecState().AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(mangle func([]byte) []byte) []byte {
		return mangle(append([]byte(nil), valid...))
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short", valid[:8]},
		{"bad magic", mutate(func(b []byte) []byte { b[0] = 'X'; return b })},
		{"future version", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:8], sessionStateVersion+1)
			return b
		})},
		{"payload length mismatch", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:12], uint32(len(b))) // absurd
			return b
		})},
		{"corrupt payload fails CRC", mutate(func(b []byte) []byte { b[20] ^= 0xff; return b })},
		{"corrupt CRC", mutate(func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b })},
		{"trailing bytes", mutate(func(b []byte) []byte { return append(b, 0) })},
		{"oversize container", make([]byte, MaxSessionStateBytes+1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeSessionState(tc.data); err == nil {
				t.Fatal("bad container accepted")
			}
		})
	}
}

// TestDecodeSessionStateRejectsImplausibleLengths rewrites interior
// length fields (window samples, kind, controller state) past their
// bounds with a fixed-up CRC, so the reject comes from the bounds check
// itself — the defense that keeps a hostile 16-byte container from
// demanding a multi-gigabyte allocation.
func TestDecodeSessionStateRejectsImplausibleLengths(t *testing.T) {
	st := &SessionState{WindowSec: 2, HopSec: 1}
	st.Engine.Config = ParetoStates()[0]
	base, err := st.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Payload offsets for the empty state: gen 8 | win 8 | hop 8 |
	// freq 8 | avg 4 | pending 4 | nSamples 4 | kindLen 4 | ctlLen 4 |
	// energy 16. Payload starts at byte 12.
	const nSamplesOff = 12 + 8 + 8 + 8 + 8 + 4 + 4
	const kindLenOff = nSamplesOff + 4
	const ctlLenOff = kindLenOff + 4
	fix := func(b []byte) []byte {
		// Recompute the CRC over the edited payload.
		plen := int(binary.LittleEndian.Uint32(b[8:12]))
		binary.LittleEndian.PutUint32(b[12+plen:], crc32.ChecksumIEEE(b[12:12+plen]))
		return b
	}
	cases := []struct {
		name string
		off  int
		val  uint32
	}{
		{"window sample count", nSamplesOff, 1<<16 + 1},
		{"giant window sample count", nSamplesOff, math.MaxUint32},
		{"kind length", kindLenOff, 65},
		{"controller state length", ctlLenOff, 4097},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := append([]byte(nil), base...)
			binary.LittleEndian.PutUint32(b[tc.off:], tc.val)
			if _, err := DecodeSessionState(fix(b)); err == nil {
				t.Fatal("implausible length accepted")
			}
		})
	}
}

func BenchmarkSessionStateEncode(b *testing.B) {
	st := codecState()
	dst := make([]byte, 0, st.EncodedLen())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := st.AppendBinary(dst[:0])
		if err != nil {
			b.Fatal(err)
		}
		_ = buf
	}
}

func BenchmarkSessionStateDecode(b *testing.B) {
	buf, err := codecState().AppendBinary(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeSessionState(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSessionStateGoldenV1 pins the committed ADSS v1 fixture: every
// future build must keep decoding containers written by this one. The
// fixture's fields are asserted exactly and the re-encode must
// reproduce the file byte for byte — if this test breaks, the format
// changed and needs a version bump plus a migration story, not a
// fixture refresh.
func TestSessionStateGoldenV1(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "session_state_v1.golden"))
	if err != nil {
		t.Fatal(err)
	}
	st, err := DecodeSessionState(data)
	if err != nil {
		t.Fatalf("golden v1 container no longer loads: %v", err)
	}
	if st.Generation != 3 || st.WindowSec != 2 || st.HopSec != 1 {
		t.Fatalf("golden header fields drifted: gen=%d window=%v hop=%v",
			st.Generation, st.WindowSec, st.HopSec)
	}
	if st.Engine.Config != ParetoStates()[1] {
		t.Fatalf("golden config drifted: %s", st.Engine.Config.Name())
	}
	if st.Engine.Pending != 7 || len(st.Engine.X) != 25 {
		t.Fatalf("golden window drifted: pending=%d samples=%d", st.Engine.Pending, len(st.Engine.X))
	}
	if st.Engine.X[8] != 1 || st.Engine.Y[8] != -1 || st.Engine.Z[8] != 0 {
		t.Fatalf("golden samples drifted: %v/%v/%v", st.Engine.X[8], st.Engine.Y[8], st.Engine.Z[8])
	}
	if st.Engine.CtlKind != "spot/1" || len(st.Engine.CtlState) != 17 {
		t.Fatalf("golden controller payload drifted: %q/%d", st.Engine.CtlKind, len(st.Engine.CtlState))
	}
	if st.Energy.ElapsedSec != 31.5 || st.Energy.ChargeUC != 2048 {
		t.Fatalf("golden energy drifted: %+v", st.Energy)
	}
	buf, err := st.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("golden fixture does not re-encode byte-identically")
	}
}

// TestSessionStateGoldenRejectsBumpedVersion is the forward-skew half of
// the golden test: the same container bytes with the version field
// bumped must be refused outright, never half-decoded — a replica that
// is behind the fleet's build fails a stateful handoff loudly and the
// device adopts cold.
func TestSessionStateGoldenRejectsBumpedVersion(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "session_state_v1.golden"))
	if err != nil {
		t.Fatal(err)
	}
	bumped := append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(bumped[4:8], sessionStateVersion+1)
	if _, err := DecodeSessionState(bumped); err == nil {
		t.Fatal("future-version container accepted")
	}
}
