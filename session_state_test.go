package adasense_test

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"

	"adasense"
)

// spotFleet mints a fresh SPOT per session so handoff tests exercise the
// stateful controller path.
func spotFleet(stability int) adasense.Option {
	return adasense.WithControllerFactory(func() adasense.Controller {
		return adasense.NewSPOT(stability)
	})
}

// encodeState is AppendBinary with a test-fatal error path.
func encodeState(t *testing.T, st *adasense.SessionState) []byte {
	t.Helper()
	buf, err := st.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestSessionSnapshotRestoreDifferential is the service-level half of
// the handoff equivalence proof: a session restored on a second,
// identically configured service (the stand-in for the receiving
// replica) must emit the same remaining event stream, track the same
// configuration, and carry the same energy ledger as the session that
// never moved — and after replay, the two ADSS encodings must be
// byte-identical.
func TestSessionSnapshotRestoreDifferential(t *testing.T) {
	sys, _ := trainedSystem(t)
	for _, snapSecs := range []float64{0.9, 4.5, 10.2} {
		t.Run(fmt.Sprintf("snapshot-at-%.1fs", snapSecs), func(t *testing.T) {
			mkSvc := func() *adasense.Service {
				svc, err := adasense.NewService(sys, spotFleet(2))
				if err != nil {
					t.Fatal(err)
				}
				return svc
			}
			control, err := mkSvc().OpenSession("control")
			if err != nil {
				t.Fatal(err)
			}
			m := adasense.NewMotion(mustSchedule(t,
				adasense.Segment{Activity: adasense.Walk, Duration: 12},
				adasense.Segment{Activity: adasense.Sit, Duration: 48},
			), 31)
			sampler := adasense.NewSampler(adasense.DefaultNoiseModel(), 32)

			const sliver = 0.3
			clock := 0.0
			for clock+sliver/2 < snapSecs {
				b := sampler.Sample(m, control.Config(), clock, clock+sliver)
				if _, err := control.Push(b); err != nil {
					t.Fatal(err)
				}
				clock += sliver
			}

			st, err := control.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			// The snapshot crosses replicas as ADSS bytes; decode what a
			// receiver would actually see.
			decoded, err := adasense.DecodeSessionState(encodeState(t, st))
			if err != nil {
				t.Fatal(err)
			}
			restored, err := mkSvc().OpenSession("restored")
			if err != nil {
				t.Fatal(err)
			}
			if err := restored.Restore(decoded); err != nil {
				t.Fatal(err)
			}
			if restored.Config() != control.Config() {
				t.Fatalf("configs differ after restore: %s vs %s",
					restored.Config().Name(), control.Config().Name())
			}
			if restored.Energy() != control.Energy() {
				t.Fatalf("energy differs after restore: %+v vs %+v",
					restored.Energy(), control.Energy())
			}

			for i := 0; i < 60; i++ {
				cfg := control.Config()
				if restored.Config() != cfg {
					t.Fatalf("step %d: configs diverged", i)
				}
				b := sampler.Sample(m, cfg, clock, clock+sliver)
				evControl, errControl := control.Push(b)
				evRestored, errRestored := restored.Push(b)
				if (errControl == nil) != (errRestored == nil) {
					t.Fatalf("step %d: push errors diverged (%v vs %v)", i, errControl, errRestored)
				}
				if !reflect.DeepEqual(evControl, evRestored) {
					t.Fatalf("step %d: events diverged:\ncontrol:  %+v\nrestored: %+v",
						i, evControl, evRestored)
				}
				clock += sliver
			}

			if restored.Energy() != control.Energy() {
				t.Fatalf("energy trajectories diverged: %+v vs %+v",
					restored.Energy(), control.Energy())
			}
			stA, err := control.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			stB, err := restored.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(encodeState(t, stA), encodeState(t, stB)) {
				t.Fatal("post-replay ADSS encodings differ")
			}
		})
	}
}

func TestSessionRestoreRejects(t *testing.T) {
	svc := testService(t, spotFleet(2))
	goodState := func() *adasense.SessionState {
		sess, err := svc.OpenSession("donor-" + t.Name())
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		st, err := sess.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	t.Run("geometry mismatch", func(t *testing.T) {
		st := goodState()
		st.WindowSec, st.HopSec = 4, 2
		sess, err := svc.OpenSession("geom")
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		if err := sess.Restore(st); err == nil {
			t.Fatal("mismatched geometry accepted")
		}
	})
	t.Run("negative energy", func(t *testing.T) {
		st := goodState()
		st.Energy.ChargeUC = -1
		sess, err := svc.OpenSession("energy")
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		if err := sess.Restore(st); err == nil {
			t.Fatal("negative energy accepted")
		}
	})
	t.Run("NaN energy", func(t *testing.T) {
		st := goodState()
		st.Energy.ElapsedSec = math.NaN()
		sess, err := svc.OpenSession("nan")
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		if err := sess.Restore(st); err == nil {
			t.Fatal("NaN energy accepted")
		}
	})
	t.Run("engine reject resets energy", func(t *testing.T) {
		sess, err := svc.OpenSession("reset")
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		// Accumulate some energy, then feed a snapshot whose controller
		// payload is corrupt: the session must come out cold.
		m := adasense.NewMotion(mustSchedule(t, adasense.Segment{Activity: adasense.Sit, Duration: 10}), 41)
		b := adasense.NewSampler(adasense.DefaultNoiseModel(), 42).Sample(m, sess.Config(), 0, 1)
		if _, err := sess.Push(b); err != nil {
			t.Fatal(err)
		}
		st := goodState()
		st.Engine.CtlState = st.Engine.CtlState[:3]
		if err := sess.Restore(st); err == nil {
			t.Fatal("corrupt controller payload accepted")
		}
		if e := sess.Energy(); e.ElapsedSec != 0 || e.ChargeUC != 0 {
			t.Fatalf("failed restore kept energy %+v", e)
		}
	})
	t.Run("closed session", func(t *testing.T) {
		st := goodState()
		sess, err := svc.OpenSession("closed")
		if err != nil {
			t.Fatal(err)
		}
		sess.Close()
		if err := sess.Restore(st); err == nil {
			t.Fatal("closed session accepted a restore")
		}
	})
}

// TestSessionEnergyAccumulates pins the energy ledger: pushing at a
// given configuration charges the power model's current for the batch
// duration, and Reset zeroes the ledger.
func TestSessionEnergyAccumulates(t *testing.T) {
	svc := testService(t)
	sess, err := svc.OpenSession("energy")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if e := sess.Energy(); e != (adasense.EnergyEstimate{}) {
		t.Fatalf("fresh session has energy %+v", e)
	}
	m := adasense.NewMotion(mustSchedule(t, adasense.Segment{Activity: adasense.Sit, Duration: 10}), 51)
	sampler := adasense.NewSampler(adasense.DefaultNoiseModel(), 52)
	for tick := 0; tick < 3; tick++ {
		b := sampler.Sample(m, sess.Config(), float64(tick), float64(tick)+1)
		if _, err := sess.Push(b); err != nil {
			t.Fatal(err)
		}
	}
	e := sess.Energy()
	if e.ElapsedSec != 3 {
		t.Fatalf("elapsed %v s after three 1 s pushes", e.ElapsedSec)
	}
	want := svc.PowerModel().CurrentUA(adasense.ParetoStates()[0]) * 3
	if math.Abs(e.ChargeUC-want) > 1e-9 {
		t.Fatalf("charge %v µC, want %v", e.ChargeUC, want)
	}
	if got := e.AvgCurrentUA(); math.Abs(got-want/3) > 1e-9 {
		t.Fatalf("avg current %v µA, want %v", got, want/3)
	}
	sess.Reset()
	if e := sess.Energy(); e != (adasense.EnergyEstimate{}) {
		t.Fatalf("Reset kept energy %+v", e)
	}
}

// TestGatewayRestoreSession covers the receiving replica's restore path:
// the stateful counter, the conflict on a live session, and the
// generation gate after a model swap.
func TestGatewayRestoreSession(t *testing.T) {
	gw := testGateway(t)
	donor, err := gw.Open("donor")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := donor.Push(gatewayBatch(t)); err != nil {
		t.Fatal(err)
	}
	st, err := donor.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if st.Generation == 0 {
		t.Fatal("gateway snapshot carries no model generation pin")
	}

	restored, err := gw.RestoreSession("moved", st)
	if err != nil {
		t.Fatal(err)
	}
	if got := gw.Stats().HandoffsStateful; got != 1 {
		t.Fatalf("HandoffsStateful = %d after one restore", got)
	}
	if restored.Config() != donor.Config() {
		t.Fatal("restored session's config differs from donor's")
	}
	// Restored sessions serve pushes immediately.
	if _, err := restored.Push(gatewayBatch(t)); err != nil {
		t.Fatal(err)
	}

	// A second restore under the same id conflicts: the device's own
	// traffic owns the session now.
	if _, err := gw.RestoreSession("moved", st); !errors.Is(err, adasense.ErrSessionExists) {
		t.Fatalf("duplicate restore: %v", err)
	}

	// After a model swap the gateway's generation moves on; a snapshot
	// pinned to the old generation must be refused so a device never
	// resumes a trajectory judged under a different model.
	if err := gw.SwapModel(altSystem(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := gw.RestoreSession("stale-gen", st); !errors.Is(err, adasense.ErrStateGeneration) {
		t.Fatalf("stale-generation restore: %v", err)
	}
	if _, ok := gw.Lookup("stale-gen"); ok {
		t.Fatal("failed restore left a registered session behind")
	}
	if got := gw.Stats().HandoffsStateful; got != 1 {
		t.Fatalf("HandoffsStateful = %d after rejected restores", got)
	}

	if _, err := gw.RestoreSession("", st); err == nil {
		t.Fatal("empty id accepted")
	}
	if _, err := gw.RestoreSession("nil-state", nil); err == nil {
		t.Fatal("nil state accepted")
	}
}

// TestGatewayAdoptSession pins the cold half: adoption opens a fresh
// session and counts it on adasense_handoffs_cold_total.
func TestGatewayAdoptSession(t *testing.T) {
	gw := testGateway(t)
	sess, err := gw.AdoptSession("wanderer")
	if err != nil {
		t.Fatal(err)
	}
	if sess.Config() != adasense.ParetoStates()[0] {
		t.Fatal("adopted session did not start cold")
	}
	if got := gw.Stats().HandoffsCold; got != 1 {
		t.Fatalf("HandoffsCold = %d after one adoption", got)
	}
	if _, err := gw.AdoptSession("wanderer"); !errors.Is(err, adasense.ErrSessionExists) {
		t.Fatalf("duplicate adoption: %v", err)
	}
	if got := gw.Stats().HandoffsCold; got != 1 {
		t.Fatalf("HandoffsCold = %d after failed adoption", got)
	}
}

// TestGatewayMigrateKeepsTrajectory pins Migrate's stateful rebuild: a
// session re-pinned to the current model keeps its configuration,
// controller descent and energy ledger instead of restarting cold.
func TestGatewayMigrateKeepsTrajectory(t *testing.T) {
	gw := testGateway(t, adasense.WithServiceOptions(spotFleet(0)))
	sess, err := gw.Open("mover")
	if err != nil {
		t.Fatal(err)
	}
	m := adasense.NewMotion(mustSchedule(t, adasense.Segment{Activity: adasense.Walk, Duration: 60}), 61)
	sampler := adasense.NewSampler(adasense.DefaultNoiseModel(), 62)
	clock := 0.0
	for sess.Config() == adasense.ParetoStates()[0] && clock < 30 {
		b := sampler.Sample(m, sess.Config(), clock, clock+1)
		if _, err := sess.Push(b); err != nil {
			t.Fatal(err)
		}
		clock += 1
	}
	if sess.Config() == adasense.ParetoStates()[0] {
		t.Fatal("fixture: zero-threshold SPOT never descended")
	}
	cfgBefore, energyBefore := sess.Config(), sess.Energy()

	if err := gw.SwapModel(altSystem(t)); err != nil {
		t.Fatal(err)
	}
	if err := sess.Migrate(); err != nil {
		t.Fatal(err)
	}
	if sess.Config() != cfgBefore {
		t.Fatalf("migrate reset the configuration: %s, had %s",
			sess.Config().Name(), cfgBefore.Name())
	}
	if sess.Energy() != energyBefore {
		t.Fatalf("migrate reset the energy ledger: %+v, had %+v", sess.Energy(), energyBefore)
	}
	// The migrated session keeps serving at its descended configuration.
	b := sampler.Sample(m, sess.Config(), clock, clock+1)
	if _, err := sess.Push(b); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSessionSnapshot(b *testing.B) {
	sys, _, err := adasense.TrainSystem(adasense.TrainingConfig{Windows: 600, Epochs: 10, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	svc, err := adasense.NewService(sys)
	if err != nil {
		b.Fatal(err)
	}
	sess, err := svc.OpenSession("bench")
	if err != nil {
		b.Fatal(err)
	}
	defer sess.Close()
	sched, err := adasense.NewSchedule([]adasense.Segment{{Activity: adasense.Sit, Duration: 10}})
	if err != nil {
		b.Fatal(err)
	}
	m := adasense.NewMotion(sched, 71)
	batch := adasense.NewSampler(adasense.DefaultNoiseModel(), 72).Sample(m, sess.Config(), 0, 1.5)
	if _, err := sess.Push(batch); err != nil {
		b.Fatal(err)
	}
	var st adasense.SessionState
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sess.SnapshotInto(&st); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSessionRestore(b *testing.B) {
	sys, _, err := adasense.TrainSystem(adasense.TrainingConfig{Windows: 600, Epochs: 10, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	svc, err := adasense.NewService(sys)
	if err != nil {
		b.Fatal(err)
	}
	donor, err := svc.OpenSession("donor")
	if err != nil {
		b.Fatal(err)
	}
	defer donor.Close()
	sched, err := adasense.NewSchedule([]adasense.Segment{{Activity: adasense.Sit, Duration: 10}})
	if err != nil {
		b.Fatal(err)
	}
	m := adasense.NewMotion(sched, 73)
	batch := adasense.NewSampler(adasense.DefaultNoiseModel(), 74).Sample(m, donor.Config(), 0, 1.5)
	if _, err := donor.Push(batch); err != nil {
		b.Fatal(err)
	}
	st, err := donor.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	target, err := svc.OpenSession("target")
	if err != nil {
		b.Fatal(err)
	}
	defer target.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := target.Restore(st); err != nil {
			b.Fatal(err)
		}
	}
}
